(* Tests for the Section 6 atomic scan and its baselines.

   The central checks:
   - Lemma 32 (comparability): values returned by concurrent Scans are
     always comparable in the lattice, under random schedules and crashes;
   - Theorem 33 (linearizability): recorded Scan histories pass the
     linearizability checker against the scan object's sequential spec;
   - Section 6.2 (cost): a Scan performs exactly n^2+n+1 reads / n+2
     writes (plain) and n^2-1 reads / n+1 writes (optimized);
   - the naive collect baseline FAILS the checker on a crafted schedule;
   - the double-collect baseline starves under an adversary, while our
     scan and the Afek et al. baseline terminate. *)

module L = Semilattice.Nat_max
module Scan = Snapshot.Scan.Make (L) (Pram.Memory.Sim_v)

(* Direct-backend instantiations for sequential (outside-the-driver)
   tests. *)
module Scan_d = Snapshot.Scan.Make (L) (Pram.Memory.Direct_v)
module Arr_d =
  Snapshot.Snapshot_array.Make (Snapshot.Slot_value.Int) (Pram.Memory.Direct_v)
module DC_d =
  Snapshot.Double_collect.Make (Snapshot.Slot_value.Int) (Pram.Memory.Direct)
module AF_d = Snapshot.Afek.Make (Snapshot.Slot_value.Int) (Pram.Memory.Direct)
module Set_lat = Semilattice.Set_union (struct
  type t = int

  let compare = Int.compare
  let pp = Format.pp_print_int
end)

module Scan_set = Snapshot.Scan.Make (Set_lat) (Pram.Memory.Sim_v)

module Scan_seq_spec = Snapshot.Scan_spec.Make (L)
module Scan_check = Lincheck.Make (Scan_seq_spec)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ctx ~procs pid = Runtime.Ctx.make ~procs ~pid ()

(* --- basic sequential behaviour ---------------------------------------- *)

let test_scan_sequential () =
  let t = Scan_d.create ~procs:3 in
  let h = Array.init 3 (fun pid -> Scan_d.attach t (ctx ~procs:3 pid)) in
  check_int "first scan returns own value" 5 (Scan_d.scan h.(0) 5);
  check_int "second process sees the join" 7 (Scan_d.scan h.(1) 7);
  check_int "read_max sees the join" 7 (Scan_d.read_max h.(2));
  Scan_d.write_l h.(2) 9;
  check_int "after write_l" 9 (Scan_d.read_max h.(0))

let test_scan_plain_equals_optimized () =
  let run variant =
    let t = Scan_d.create ~procs:2 in
    let h0 = Scan_d.attach t (ctx ~procs:2 0) in
    let h1 = Scan_d.attach t (ctx ~procs:2 1) in
    let a = Scan_d.scan ~variant h0 3 in
    let b = Scan_d.scan ~variant h1 8 in
    let c = Scan_d.read_max ~variant h0 in
    (a, b, c)
  in
  let plain = run Snapshot.Scan.Plain in
  check_bool "optimized agrees sequentially" true
    (plain = run Snapshot.Scan.Optimized);
  check_bool "adaptive agrees sequentially" true
    (plain = run Snapshot.Scan.Adaptive);
  check_bool "lattice agrees sequentially" true
    (plain = run Snapshot.Scan.Lattice)

(* --- Section 6.2 cost formulas (experiment E5's unit-level form) ------- *)

let scan_cost ~procs ~variant =
  let program () =
    let t = Scan.create ~procs in
    fun pid -> Scan.scan ~variant (Scan.attach t (ctx ~procs pid)) (pid + 1)
  in
  let d = Pram.Driver.create ~procs program in
  (* run only process 0 to completion; count its steps *)
  check_bool "finished" true (Pram.Driver.run_solo d 0);
  Pram.Driver.steps d 0

let test_cost_plain () =
  List.iter
    (fun n ->
      let reads, writes = Snapshot.Scan.cost_formula ~procs:n Snapshot.Scan.Plain in
      check_int
        (Printf.sprintf "plain scan cost at n=%d" n)
        (reads + writes)
        (scan_cost ~procs:n ~variant:Snapshot.Scan.Plain))
    [ 1; 2; 3; 5; 8 ]

let test_cost_optimized () =
  List.iter
    (fun n ->
      let reads, writes =
        Snapshot.Scan.cost_formula ~procs:n Snapshot.Scan.Optimized
      in
      check_int
        (Printf.sprintf "optimized scan cost at n=%d" n)
        (reads + writes)
        (scan_cost ~procs:n ~variant:Snapshot.Scan.Optimized))
    [ 1; 2; 3; 5; 8 ]

let test_cost_adaptive () =
  (* A solo run never escalates, so the adaptive fast path's exact
     count — 4 reads per peer plus the column-0 publish — is an
     equality, like the two paper formulas above. *)
  List.iter
    (fun n ->
      let reads, writes =
        Snapshot.Scan.cost_formula ~procs:n Snapshot.Scan.Adaptive
      in
      check_int
        (Printf.sprintf "adaptive scan cost at n=%d" n)
        (reads + writes)
        (scan_cost ~procs:n ~variant:Snapshot.Scan.Adaptive))
    [ 1; 2; 3; 5; 8 ]

let test_cost_lattice () =
  (* The lattice descent is all fixed-trip loops and a solo run stays in
     generation 1, so — like the paper formulas — the count is an
     equality: 2(n-1) collect/fence reads plus ceil(log2 n) levels of n
     slot peeks, and ceil(log2 n) + 3 writes.  (test_metrics additionally
     pins the same equality per-pid under a contended round-robin run at
     procs 1..8.) *)
  List.iter
    (fun n ->
      let reads, writes =
        Snapshot.Scan.cost_formula ~procs:n Snapshot.Scan.Lattice
      in
      check_int
        (Printf.sprintf "lattice scan cost at n=%d" n)
        (reads + writes)
        (scan_cost ~procs:n ~variant:Snapshot.Scan.Lattice))
    [ 1; 2; 3; 5; 8 ]

(* --- multi-shot reuse: generations past the pool boundary --------------- *)

let test_lattice_multishot_reuse () =
  (* Three processes interleave 4 rounds of lattice scans each — 12
     generations against a pool of [lattice_pool = 4] trees, so every
     tree is recycled at least twice.  Sequentially every scan must
     return the exact join of all contributions so far; stale stamps
     from earlier occupants of a recycled tree must never leak in. *)
  let procs = 3 in
  let t = Scan_d.create ~procs in
  let h = Array.init procs (fun pid -> Scan_d.attach t (ctx ~procs pid)) in
  let expected = ref 0 in
  for round = 0 to 3 do
    for pid = 0 to procs - 1 do
      let v = (round * 10) + pid + 1 in
      expected := max !expected v;
      check_int
        (Printf.sprintf "round %d pid %d sees the running join" round pid)
        !expected
        (Scan_d.scan ~variant:Snapshot.Scan.Lattice h.(pid) v)
    done
  done;
  check_int "final read_max" !expected
    (Scan_d.read_max ~variant:Snapshot.Scan.Lattice h.(0))

(* --- bounded retry: the escalation rate drops under contention ---------- *)

let test_adaptive_retry_reduces_escalations () =
  (* The same contended workload (three processes, three scans each,
     seeded random schedules) with the fast collect allowed one attempt
     vs the default two: a single racing writer invalidates at most one
     window, so the second attempt turns most escalations back into
     fast-path completions.  Gate on the aggregate [Scan_escalation]
     counts: strictly fewer with retries, and never more per seed. *)
  let escalations ~retries ~seed =
    let procs = 3 in
    let c = Telemetry.Counters.create ~procs () in
    let program () =
      let t = Scan.create ~procs in
      fun pid ->
        let sink = Runtime.Sink.make ~telemetry:c () in
        let h = Scan.attach ~retries t (Runtime.Ctx.make ~sink ~procs ~pid ()) in
        for i = 1 to 3 do
          ignore
            (Scan.scan ~variant:Snapshot.Scan.Adaptive h ((pid * 100) + i))
        done
    in
    let d = Pram.Driver.create ~procs program in
    Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
    for p = 0 to procs - 1 do
      if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
    done;
    Telemetry.Counters.total c Telemetry.Event.Scan_escalation
  in
  let seeds = List.init 24 (fun i -> 1000 + (17 * i)) in
  let one, two =
    List.fold_left
      (fun (a1, a2) seed ->
        let e1 = escalations ~retries:1 ~seed in
        let e2 = escalations ~retries:2 ~seed in
        check_bool
          (Printf.sprintf "seed %d: retrying never escalates more" seed)
          true (e2 <= e1);
        (a1 + e1, a2 + e2))
      (0, 0) seeds
  in
  check_bool "the one-attempt runs do escalate" true (one > 0);
  check_bool "bounded retry strictly reduces total escalations" true (two < one)

(* --- DPOR-complete cross-variant differential --------------------------- *)

(* The schedule spaces of two variants cannot be matched step for step
   (their access sequences differ), so the differential compares the
   complete SETS of reachable outcomes instead: explore the
   write_l/read_max workload to DPOR completeness under each variant and
   collect every result vector.  Outcomes are a function of the
   Mazurkiewicz class, so the collected set is the full set of reachable
   outcomes, and two variants implement the same object on every
   explored schedule iff the sets are byte-identical. *)
let variant_outcome_set ?retries ~procs ~active variant =
  let results = Hashtbl.create 16 in
  let program () =
    let t = Scan_set.create ~procs in
    fun pid ->
      let h = Scan_set.attach ?retries t (ctx ~procs pid) in
      if pid < active then begin
        Scan_set.write_l ~variant h (Set_lat.of_list [ pid + 1 ]);
        Set_lat.elements (Scan_set.read_max ~variant h)
      end
      else []
  in
  let outcome =
    Pram.Explore.exhaustive ~mode:Pram.Explore.Dpor ~procs program
      (fun d _sched ->
        let v = List.init procs (fun p -> Pram.Driver.result d p) in
        Hashtbl.replace results v ();
        true)
  in
  let set = Hashtbl.fold (fun k () acc -> k :: acc) results [] in
  (outcome, List.sort compare set)

(* The same workload over the double-collect baseline (sorted non-default
   slots stand in for the set elements), as an implementation-independent
   reference point for the outcome sets. *)
let dc_outcome_set ~procs ~active =
  let module DC2 =
    Snapshot.Double_collect.Make (Snapshot.Slot_value.Int) (Pram.Memory.Sim)
  in
  let results = Hashtbl.create 16 in
  let program () =
    let t = DC2.create ~procs in
    fun pid ->
      let h = DC2.attach t (ctx ~procs pid) in
      if pid < active then begin
        DC2.update h (pid + 1);
        DC2.snapshot_exn h |> Array.to_list
        |> List.filter (fun v -> v <> 0)
        |> List.sort compare
      end
      else []
  in
  let outcome =
    Pram.Explore.exhaustive ~mode:Pram.Explore.Dpor ~procs program
      (fun d _sched ->
        let v = List.init procs (fun p -> Pram.Driver.result d p) in
        Hashtbl.replace results v ();
        true)
  in
  let set = Hashtbl.fold (fun k () acc -> k :: acc) results [] in
  (outcome, List.sort compare set)

let test_dpor_differential_p2 () =
  (* [retries:1] pins the pre-retry adaptive: with the default bounded
     retry a single peer write can only invalidate one of the two
     windows, so the escalation branch would fall out of the closure. *)
  let o_a, s_a =
    variant_outcome_set ~retries:1 ~procs:2 ~active:2 Snapshot.Scan.Adaptive
  in
  let o_a2, s_a2 =
    variant_outcome_set ~procs:2 ~active:2 Snapshot.Scan.Adaptive
  in
  let o_o, s_o =
    variant_outcome_set ~procs:2 ~active:2 Snapshot.Scan.Optimized
  in
  let o_p, s_p = variant_outcome_set ~procs:2 ~active:2 Snapshot.Scan.Plain in
  let o_l, s_l = variant_outcome_set ~procs:2 ~active:2 Snapshot.Scan.Lattice in
  let o_dc, s_dc = dc_outcome_set ~procs:2 ~active:2 in
  check_bool "adaptive closure complete" true (Pram.Explore.ok o_a);
  check_bool "adaptive (bounded retry) closure complete" true
    (Pram.Explore.ok o_a2);
  check_bool "optimized closure complete" true (Pram.Explore.ok o_o);
  check_bool "plain closure complete" true (Pram.Explore.ok o_p);
  check_bool "lattice closure complete" true (Pram.Explore.ok o_l);
  check_bool "double-collect closure complete" true (Pram.Explore.ok o_dc);
  (* the adaptive fast path escalates on some of these schedules, so the
     contended branch is inside the explored closure *)
  check_bool "adaptive closure non-trivial" true
    (o_a.Pram.Explore.explored > 10);
  check_bool "optimized closure non-trivial" true
    (o_o.Pram.Explore.explored > 500);
  check_bool "lattice closure non-trivial" true
    (o_l.Pram.Explore.explored > 10);
  check_bool "adaptive = optimized outcome sets" true (s_a = s_o);
  check_bool "adaptive = bounded-retry outcome sets" true (s_a = s_a2);
  check_bool "adaptive = plain outcome sets" true (s_a = s_p);
  check_bool "lattice = optimized outcome sets" true (s_l = s_o);
  check_bool "adaptive = double-collect outcome sets" true (s_a = s_dc);
  (* the workload's three linearizable outcomes, spelled out: the reader
     that linearizes first misses the other writer's element *)
  check_int "all three outcomes reached" 3 (List.length s_a)

let test_dpor_differential_p3 () =
  (* Third process idle but attached: its anchor slot is in every scan,
     so the collects and validations genuinely span three columns.
     (Plain at this size explores the same 8_613-class closure as
     Optimized but takes ~10s; the p2 test above already ties Plain
     in.) *)
  let o_a, s_a =
    variant_outcome_set ~retries:1 ~procs:3 ~active:2 Snapshot.Scan.Adaptive
  in
  let o_o, s_o =
    variant_outcome_set ~procs:3 ~active:2 Snapshot.Scan.Optimized
  in
  let o_l, s_l = variant_outcome_set ~procs:3 ~active:2 Snapshot.Scan.Lattice in
  check_bool "adaptive closure complete" true (Pram.Explore.ok o_a);
  check_bool "optimized closure complete" true (Pram.Explore.ok o_o);
  check_bool "lattice closure complete" true (Pram.Explore.ok o_l);
  check_bool "adaptive closure non-trivial" true
    (o_a.Pram.Explore.explored > 50);
  check_bool "optimized closure non-trivial" true
    (o_o.Pram.Explore.explored > 1_000);
  (* the lattice access sequence is mostly single-writer slot posts and
     reads, so DPOR collapses it to a couple dozen classes at this size *)
  check_bool "lattice closure non-trivial" true
    (o_l.Pram.Explore.explored > 10);
  check_bool "adaptive = optimized outcome sets" true (s_a = s_o);
  check_bool "lattice = optimized outcome sets" true (s_l = s_o);
  check_int "all three outcomes reached" 3 (List.length s_a)

(* --- lattice under crashes: death mid-descend breaks nothing ------------ *)

let test_lattice_crash_mid_descend () =
  (* Crash-branching exploration of the lattice workload (procs 3, one
     crash): branches include a process dying at every point of its
     classifier descent — after the announce, between slot posts, before
     the fence.  Survivors must still agree: every completed read_max
     pair stays lattice-comparable, and each completed process's result
     contains its own contribution. *)
  let procs = 3 in
  let program () =
    let t = Scan_set.create ~procs in
    fun pid ->
      let h = Scan_set.attach t (ctx ~procs pid) in
      Scan_set.write_l ~variant:Snapshot.Scan.Lattice h
        (Set_lat.of_list [ pid + 1 ]);
      Scan_set.read_max ~variant:Snapshot.Scan.Lattice h
  in
  let outcome =
    Pram.Explore.exhaustive ~mode:Pram.Explore.Naive ~max_crashes:1
      ~max_schedules:4_000 ~procs program
      (fun d _sched ->
        let done_ =
          List.filter_map
            (fun p ->
              match Pram.Driver.result d p with
              | Some r -> Some (p, r)
              | None -> None)
            (List.init procs Fun.id)
        in
        List.for_all
          (fun (p, r) ->
            Set_lat.elements r |> List.mem (p + 1)
            && List.for_all
                 (fun (_, r') ->
                   Semilattice.comparable (module Set_lat) r r')
                 done_)
          done_)
  in
  check_bool "no violation in any crash branch" true
    (outcome.Pram.Explore.failures = []);
  check_bool "explored a real sample" true
    (outcome.Pram.Explore.explored >= 1_000)

(* --- Lemma 32: comparability of concurrent scan results ---------------- *)

let qcheck_comparability =
  QCheck.Test.make ~name:"Lemma 32: scan results pairwise comparable"
    ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_bound 1))
    (fun (seed, crashes) ->
      let procs = 3 in
      let program () =
        let t = Scan_set.create ~procs in
        fun pid ->
          (* two scans per process, each contributing a distinct element *)
          let h = Scan_set.attach t (ctx ~procs pid) in
          let r1 = Scan_set.scan h (Set_lat.of_list [ (pid * 2) + 1 ]) in
          let r2 = Scan_set.scan h (Set_lat.of_list [ (pid * 2) + 2 ]) in
          [ r1; r2 ]
      in
      let d = Pram.Driver.create ~procs program in
      let crash_prob = if crashes = 1 then 0.05 else 0.0 in
      Pram.Scheduler.run
        (Pram.Scheduler.random ~crash_prob ~min_alive:1 ~seed ())
        d;
      (* finish the survivors *)
      for p = 0 to procs - 1 do
        if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
      done;
      let results =
        List.concat_map
          (fun p -> match Pram.Driver.result d p with Some l -> l | None -> [])
          [ 0; 1; 2 ]
      in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> Semilattice.comparable (module Set_lat) a b)
            results)
        results)

(* --- Theorem 33: linearizability under random schedules ---------------- *)

(* One run of the write/read workload: each process does Write_l then
   Read_max, under a random schedule; returns the recorded history. *)
let scan_object_history ~procs ~seed ~with_crash =
  let recorder = Spec.History.Recorder.create () in
  let program () =
    let t = Scan.create ~procs in
    fun pid ->
      let h = Scan.attach t (ctx ~procs pid) in
      ignore
        (Spec.History.Recorder.record recorder ~pid (`Write_l (pid + 1))
           (fun () ->
             Scan.write_l h (pid + 1);
             `Unit));
      ignore
        (Spec.History.Recorder.record recorder ~pid `Read_max (fun () ->
             `Join (Scan.read_max h)))
  in
  let d = Pram.Driver.create ~procs program in
  let crash_prob = if with_crash then 0.05 else 0.0 in
  Pram.Scheduler.run (Pram.Scheduler.random ~crash_prob ~min_alive:1 ~seed ()) d;
  for p = 0 to procs - 1 do
    if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
  done;
  Spec.History.Recorder.events recorder

let qcheck_scan_linearizable =
  QCheck.Test.make ~name:"Theorem 33: write_l/read_max histories linearizable"
    ~count:300
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (seed, with_crash) ->
      Scan_check.is_linearizable
        (scan_object_history ~procs:3 ~seed ~with_crash))

(* The combined Scan primitive — contribute v and return the join, as one
   atomic operation — is STRICTLY STRONGER than the paper's object, and
   the implementation does not provide it: a Write_L's internal value may
   contain contributions of operations that must linearize after it.
   This test documents the distinction by finding a violating schedule. *)
let test_combined_scan_not_atomic () =
  let module Combined = struct
    type state = int
    type operation = int
    type response = int

    let initial = 0

    let apply s v =
      let s' = max s v in
      (s', s')

    let commutes _ _ = false
    let overwrites _ _ = false
    let reads_only _ = false
    let equal_state = Int.equal
    let equal_response = Int.equal
    let pp_operation = Format.pp_print_int
    let pp_response = Format.pp_print_int
    let pp_state = Format.pp_print_int
  end in
  let module Check = Lincheck.Make (Combined) in
  let violation_for_seed seed =
    let procs = 3 in
    let recorder = Spec.History.Recorder.create () in
    let program () =
      let t = Scan.create ~procs in
      fun pid ->
        let h = Scan.attach t (ctx ~procs pid) in
        for round = 0 to 1 do
          let v = 1 + (pid * 2) + round in
          ignore
            (Spec.History.Recorder.record recorder ~pid v (fun () ->
                 Scan.scan h v))
        done
    in
    let d = Pram.Driver.create ~procs program in
    Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
    not (Check.is_linearizable (Spec.History.Recorder.events recorder))
  in
  let rec exists seed =
    if seed > 2000 then false
    else violation_for_seed seed || exists (seed + 1)
  in
  Alcotest.(check bool)
    "a schedule violating atomic fetch-and-join exists" true (exists 0)

(* Lemma 29's flavor, observed at the object level: values returned by
   real-time-ordered operations are monotone in the lattice — a process's
   successive read_max results never decrease, and a read_max that begins
   after another completes returns at least as much. *)
let qcheck_scan_monotone =
  QCheck.Test.make ~name:"Lemma 29: read_max monotone per process"
    ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let procs = 3 in
      let program () =
        let t = Scan.create ~procs in
        fun pid ->
          let h = Scan.attach t (ctx ~procs pid) in
          Scan.write_l h (pid + 1);
          let a = Scan.read_max h in
          let b = Scan.read_max h in
          Scan.write_l h (10 * (pid + 1));
          let c = Scan.read_max h in
          (a, b, c)
      in
      let d = Pram.Driver.create ~procs program in
      Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
      for p = 0 to procs - 1 do
        if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
      done;
      List.for_all
        (fun p ->
          match Pram.Driver.result d p with
          | Some (a, b, c) -> a <= b && b <= c && c >= 10 * (p + 1)
          | None -> false)
        (List.init procs Fun.id))

(* --- wait-freedom: solo completion no matter what others did ----------- *)

let qcheck_wait_free =
  QCheck.Test.make ~name:"scan is wait-free (solo completion, others crashed)"
    ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound 200))
    (fun (seed, prefix_len) ->
      let procs = 4 in
      let program () =
        let t = Scan.create ~procs in
        fun pid -> Scan.scan (Scan.attach t (ctx ~procs pid)) pid
      in
      (* random prefix, then crash everyone except process 0 *)
      let d = Pram.Driver.create ~procs program in
      let sched = Pram.Scheduler.random ~seed () in
      (try
         for _ = 1 to prefix_len do
           match sched d with
           | Pram.Scheduler.Step p -> Pram.Driver.step d p
           | _ -> ()
         done
       with _ -> ());
      for p = 1 to procs - 1 do
        Pram.Driver.crash d p
      done;
      (* the scan must finish within its deterministic step bound *)
      let reads, writes =
        Snapshot.Scan.cost_formula ~procs Snapshot.Scan.Optimized
      in
      let bound = reads + writes in
      (not (Pram.Driver.runnable d 0))
      || Pram.Driver.run_solo ~max_steps:bound d 0)

(* --- snapshot array on top of the scan --------------------------------- *)

module Arr = Snapshot.Snapshot_array.Make (Snapshot.Slot_value.Int) (Pram.Memory.Sim_v)
module Arr_spec =
  Snapshot.Array_spec.Make
    (Snapshot.Slot_value.Int)
    (struct
      let procs = 3
    end)

module Arr_check = Lincheck.Make (Arr_spec)

let snapshot_array_program ~procs recorder () =
  let t = Arr.create ~procs in
  fun pid ->
    let h = Arr.attach t (ctx ~procs pid) in
    Spec.History.Recorder.record recorder ~pid (`Update (pid, pid + 10))
      (fun () ->
        Arr.update h (pid + 10);
        `Unit)
    |> ignore;
    Spec.History.Recorder.record recorder ~pid `Snapshot (fun () ->
        `View (Arr.snapshot h))
    |> ignore

let qcheck_snapshot_array_linearizable =
  QCheck.Test.make ~name:"snapshot array linearizable" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let procs = 3 in
      let recorder = Spec.History.Recorder.create () in
      let d =
        Pram.Driver.create ~procs (snapshot_array_program ~procs recorder)
      in
      Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
      Arr_check.is_linearizable (Spec.History.Recorder.events recorder))

let test_snapshot_array_sequential () =
  let t = Arr_d.create ~procs:3 in
  let h = Array.init 3 (fun pid -> Arr_d.attach t (ctx ~procs:3 pid)) in
  Arr_d.update h.(0) 100;
  Arr_d.update h.(2) 300;
  let view = Arr_d.snapshot h.(1) in
  check_bool "view" true (view = [| 100; 0; 300 |]);
  Arr_d.update h.(0) 111;
  let view = Arr_d.snapshot h.(2) in
  check_bool "updated view" true (view = [| 111; 0; 300 |])

(* --- the naive collect is NOT atomic ------------------------------------ *)

module Naive = Snapshot.Collect.Make (Snapshot.Slot_value.Int) (Pram.Memory.Sim)

let test_naive_collect_violation () =
  (* Two writers p0 (slot 0) and p1 (slot 1); reader p2 collects.
     Schedule: p2 reads slot0 (=0); p0 writes slot0=1; p1 (after seeing
     p0's write via its own read) writes slot1=1; p2 reads slot1 (=1).
     p2's view [0; 1] is inconsistent with the write order: slot1 was
     written strictly after slot0, so any atomic view showing slot1=1 must
     show slot0=1.  The checker sees the writes' real-time order and the
     reader's view and must reject. *)
  let recorder = Spec.History.Recorder.create () in
  let program () =
    let t = Naive.create ~procs:3 in
    fun pid ->
      let h = Naive.attach t (ctx ~procs:3 pid) in
      match pid with
      | 0 ->
          ignore
            (Spec.History.Recorder.record recorder ~pid (`Update (0, 1))
               (fun () ->
                 Naive.update h 1;
                 `Unit))
      | 1 ->
          ignore
            (Spec.History.Recorder.record recorder ~pid (`Update (1, 1))
               (fun () ->
                 Naive.update h 1;
                 `Unit))
      | _ ->
          ignore
            (Spec.History.Recorder.record recorder ~pid `Snapshot (fun () ->
                 `View (Naive.snapshot h)))
  in
  let d = Pram.Driver.create ~procs:3 program in
  (* p2's snapshot reads slots in order 0,1. *)
  Pram.Driver.step d 2 (* p2 reads slot0 = 0 *);
  Pram.Driver.step d 0 (* p0 writes slot0 = 1 *);
  Pram.Driver.step d 1 (* p1 writes slot1 = 1 (after p0 in real time) *);
  Pram.Driver.step d 2 (* p2 reads slot1 = 1 *);
  Pram.Scheduler.run (Pram.Scheduler.round_robin ()) d;
  check_bool "naive collect rejected" false
    (Arr_check.is_linearizable (Spec.History.Recorder.events recorder))

(* --- double collect: linearizable but starvable ------------------------- *)

module DC = Snapshot.Double_collect.Make (Snapshot.Slot_value.Int) (Pram.Memory.Sim)

let test_double_collect_correct_when_quiet () =
  let t = DC_d.create ~procs:2 in
  DC_d.update (DC_d.attach t (ctx ~procs:2 0)) 5;
  let v = DC_d.snapshot_exn (DC_d.attach t (ctx ~procs:2 1)) in
  check_bool "view" true (v = [| 5; 0 |])

let test_double_collect_starves () =
  (* Adversary: let the reader finish one collect, then always schedule a
     writer write between the reader's collects.  The reader never sees
     two equal collects. *)
  let program () =
    let t = DC.create ~procs:2 in
    fun pid ->
      let h = DC.attach t (ctx ~procs:2 pid) in
      if pid = 0 then begin
        (* endless writer *)
        for i = 1 to 1_000 do
          DC.update h i
        done;
        None
      end
      else DC.snapshot ~max_rounds:50 h
  in
  let d = Pram.Driver.create ~procs:2 program in
  (* interleave: 1 writer write (2 slots... update = 1 write), then the
     reader's full collect (2 reads), repeatedly *)
  let rec loop k =
    if k = 0 then ()
    else if Pram.Driver.runnable d 1 then begin
      if Pram.Driver.runnable d 0 then Pram.Driver.step d 0;
      if Pram.Driver.runnable d 1 then begin
        Pram.Driver.step d 1;
        if Pram.Driver.runnable d 1 then Pram.Driver.step d 1
      end;
      loop (k - 1)
    end
  in
  loop 400;
  (* reader exhausted its rounds without success *)
  if Pram.Driver.runnable d 1 then ignore (Pram.Driver.run_solo d 1);
  match Pram.Driver.result d 1 with
  | Some None -> () (* starved, as expected *)
  | Some (Some _) -> Alcotest.fail "double collect unexpectedly succeeded"
  | None -> Alcotest.fail "reader did not finish"

(* --- Afek et al.: wait-free via helping --------------------------------- *)

module AF = Snapshot.Afek.Make (Snapshot.Slot_value.Int) (Pram.Memory.Sim)
module AB = Snapshot.Afek_bounded.Make (Snapshot.Slot_value.Int) (Pram.Memory.Sim)
module AB_d = Snapshot.Afek_bounded.Make (Snapshot.Slot_value.Int) (Pram.Memory.Direct)

let test_afek_sequential () =
  let t = AF_d.create ~procs:3 in
  AF_d.update (AF_d.attach t (ctx ~procs:3 0)) 7;
  AF_d.update (AF_d.attach t (ctx ~procs:3 1)) 8;
  let v = AF_d.snapshot (AF_d.attach t (ctx ~procs:3 2)) in
  check_bool "view" true (v = [| 7; 8; 0 |])

let qcheck_afek_linearizable =
  QCheck.Test.make ~name:"afek snapshot linearizable" ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let procs = 3 in
      let recorder = Spec.History.Recorder.create () in
      let program () =
        let t = AF.create ~procs in
        fun pid ->
          let h = AF.attach t (ctx ~procs pid) in
          ignore
            (Spec.History.Recorder.record recorder ~pid (`Update (pid, pid + 10))
               (fun () ->
                 AF.update h (pid + 10);
                 `Unit));
          ignore
            (Spec.History.Recorder.record recorder ~pid `Snapshot (fun () ->
                 `View (AF.snapshot h)))
      in
      let d = Pram.Driver.create ~procs program in
      Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
      Arr_check.is_linearizable (Spec.History.Recorder.events recorder))

let test_afek_bounded_sequential () =
  let t = AB_d.create ~procs:3 in
  let h = Array.init 3 (fun pid -> AB_d.attach t (ctx ~procs:3 pid)) in
  AB_d.update h.(0) 7;
  AB_d.update h.(1) 8;
  check_bool "view" true (AB_d.snapshot h.(2) = [| 7; 8; 0 |]);
  AB_d.update h.(0) 9;
  check_bool "second view" true (AB_d.snapshot h.(1) = [| 9; 8; 0 |])

let qcheck_afek_bounded_linearizable =
  QCheck.Test.make ~name:"bounded afek snapshot linearizable" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let procs = 3 in
      let recorder = Spec.History.Recorder.create () in
      let program () =
        let t = AB.create ~procs in
        fun pid ->
          let h = AB.attach t (ctx ~procs pid) in
          ignore
            (Spec.History.Recorder.record recorder ~pid (`Update (pid, pid + 10))
               (fun () ->
                 AB.update h (pid + 10);
                 `Unit));
          ignore
            (Spec.History.Recorder.record recorder ~pid `Snapshot (fun () ->
                 `View (AB.snapshot h)))
      in
      let d = Pram.Driver.create ~procs program in
      Pram.Scheduler.run ~max_steps:5_000_000 (Pram.Scheduler.random ~seed ()) d;
      Arr_check.is_linearizable (Spec.History.Recorder.events recorder))

let qcheck_afek_bounded_wait_free =
  QCheck.Test.make ~name:"bounded afek scan bounded under contention"
    ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_bound 300))
    (fun (seed, prefix_len) ->
      let procs = 3 in
      let program () =
        let t = AB.create ~procs in
        fun pid ->
          let h = AB.attach t (ctx ~procs pid) in
          if pid = 0 then ignore (AB.snapshot h)
          else
            for i = 1 to 30 do
              AB.update h i
            done
      in
      let d = Pram.Driver.create ~procs program in
      let sched = Pram.Scheduler.random ~seed () in
      for _ = 1 to prefix_len do
        match sched d with
        | Pram.Scheduler.Step p -> Pram.Driver.step d p
        | _ -> ()
      done;
      (not (Pram.Driver.runnable d 0)) || Pram.Driver.run_solo ~max_steps:500 d 0)

let qcheck_afek_wait_free_bound =
  QCheck.Test.make ~name:"afek scan bounded despite concurrency" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_bound 300))
    (fun (seed, prefix_len) ->
      let procs = 3 in
      let program () =
        let t = AF.create ~procs in
        fun pid ->
          let h = AF.attach t (ctx ~procs pid) in
          if pid = 0 then begin
            ignore (AF.snapshot h);
            [||]
          end
          else begin
            for i = 1 to 50 do
              AF.update h i
            done;
            [||]
          end
      in
      let d = Pram.Driver.create ~procs program in
      let sched = Pram.Scheduler.random ~seed () in
      (try
         for _ = 1 to prefix_len do
           match sched d with
           | Pram.Scheduler.Step p -> Pram.Driver.step d p
           | _ -> ()
         done
       with _ -> ());
      (* reader must finish within O(n^2 * updates-in-flight) steps solo *)
      (not (Pram.Driver.runnable d 0)) || Pram.Driver.run_solo ~max_steps:200 d 0)

let () =
  Alcotest.run "snapshot"
    [
      ( "scan",
        [
          Alcotest.test_case "sequential joins" `Quick test_scan_sequential;
          Alcotest.test_case "variants agree" `Quick test_scan_plain_equals_optimized;
          Alcotest.test_case "cost: plain formula" `Quick test_cost_plain;
          Alcotest.test_case "cost: optimized formula" `Quick test_cost_optimized;
          Alcotest.test_case "cost: adaptive formula" `Quick test_cost_adaptive;
          Alcotest.test_case "cost: lattice formula" `Quick test_cost_lattice;
          Alcotest.test_case "lattice multi-shot reuse past the pool" `Quick
            test_lattice_multishot_reuse;
          Alcotest.test_case "bounded retry reduces escalations" `Quick
            test_adaptive_retry_reduces_escalations;
          Alcotest.test_case "DPOR differential, procs 2 (all variants)" `Quick
            test_dpor_differential_p2;
          Alcotest.test_case "DPOR differential, procs 3" `Quick
            test_dpor_differential_p3;
          Alcotest.test_case "lattice crash mid-descend" `Quick
            test_lattice_crash_mid_descend;
          QCheck_alcotest.to_alcotest qcheck_comparability;
          QCheck_alcotest.to_alcotest qcheck_scan_linearizable;
          Alcotest.test_case "combined fetch-and-join is not atomic" `Quick
            test_combined_scan_not_atomic;
          QCheck_alcotest.to_alcotest qcheck_scan_monotone;
          QCheck_alcotest.to_alcotest qcheck_wait_free;
        ] );
      ( "snapshot array",
        [
          Alcotest.test_case "sequential" `Quick test_snapshot_array_sequential;
          QCheck_alcotest.to_alcotest qcheck_snapshot_array_linearizable;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "naive collect violates atomicity" `Quick
            test_naive_collect_violation;
          Alcotest.test_case "double collect correct when quiet" `Quick
            test_double_collect_correct_when_quiet;
          Alcotest.test_case "double collect starves" `Quick
            test_double_collect_starves;
          Alcotest.test_case "afek sequential" `Quick test_afek_sequential;
          QCheck_alcotest.to_alcotest qcheck_afek_linearizable;
          QCheck_alcotest.to_alcotest qcheck_afek_wait_free_bound;
          Alcotest.test_case "bounded afek sequential" `Quick
            test_afek_bounded_sequential;
          QCheck_alcotest.to_alcotest qcheck_afek_bounded_linearizable;
          QCheck_alcotest.to_alcotest qcheck_afek_bounded_wait_free;
        ] );
    ]

(* Tests for one-shot lattice agreement (Section 2's "closely related"
   technique): validity, comparability, wait-freedom and cost for both
   the scan-based and the classifier-tree implementations. *)

module LA_scan = Snapshot.Lattice_agreement.Via_scan (Pram.Memory.Sim_v)
module LA_cls = Snapshot.Lattice_agreement.Classifier (Pram.Memory.Sim)
module LA_cls_d = Snapshot.Lattice_agreement.Classifier (Pram.Memory.Direct)
module PS = Snapshot.Lattice_agreement.Pid_set

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ctx ~procs pid = Runtime.Ctx.make ~procs ~pid ()

let run_random (module L : Snapshot.Lattice_agreement.S) ~procs ~seed
    ~crash_prob =
  let program () =
    let t = L.create ~procs in
    fun pid -> L.propose (L.attach t (ctx ~procs pid)) (PS.singleton pid)
  in
  let d = Pram.Driver.create ~procs program in
  Pram.Scheduler.run
    (Pram.Scheduler.random ~crash_prob ~min_alive:1 ~seed ())
    d;
  for p = 0 to procs - 1 do
    if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
  done;
  d

let la_properties (module L : Snapshot.Lattice_agreement.S) ~procs d =
  let all = PS.of_list (List.init procs Fun.id) in
  let outputs =
    List.filter_map
      (fun p ->
        Option.map (fun o -> (p, o)) (Pram.Driver.result d p))
      (List.init procs Fun.id)
  in
  List.for_all
    (fun (p, o) ->
      Snapshot.Lattice_agreement.valid ~own:(PS.singleton p) ~all o)
    outputs
  && List.for_all
       (fun (_, a) ->
         List.for_all
           (fun (_, b) -> Snapshot.Lattice_agreement.comparable a b)
           outputs)
       outputs

let qcheck_properties name (module L : Snapshot.Lattice_agreement.S) =
  QCheck.Test.make ~name:(name ^ ": validity + comparability") ~count:400
    QCheck.(triple (int_bound 1_000_000) (int_range 2 6) bool)
    (fun (seed, procs, crash) ->
      let d =
        run_random (module L) ~procs ~seed
          ~crash_prob:(if crash then 0.05 else 0.0)
      in
      la_properties (module L) ~procs d)

let test_sequential () =
  let t = LA_cls_d.create ~procs:4 in
  let o0 = LA_cls_d.propose (LA_cls_d.attach t (ctx ~procs:4 0)) (PS.singleton 0) in
  check_bool "first proposer outputs at least itself" true (PS.mem 0 o0);
  let o1 = LA_cls_d.propose (LA_cls_d.attach t (ctx ~procs:4 1)) (PS.singleton 1) in
  check_bool "comparable" true (Snapshot.Lattice_agreement.comparable o0 o1);
  check_bool "later output contains earlier" true (PS.subset o0 o1)

let test_propose_requires_own_pid () =
  let t = LA_cls_d.create ~procs:2 in
  let h0 = LA_cls_d.attach t (ctx ~procs:2 0) in
  check_bool "rejected" true
    (try ignore (LA_cls_d.propose h0 (PS.singleton 1)); false
     with Invalid_argument _ -> true)

let test_costs () =
  (* classifier: ceil(log2 n) levels of n reads; scan: n^2 - 1 *)
  check_int "classifier n=8" 24 (LA_cls.reads_per_propose ~procs:8);
  check_int "scan n=8" 63 (LA_scan.reads_per_propose ~procs:8);
  (* the crossover the Section 2 remark is about: classifier wins as n
     grows *)
  check_bool "classifier asymptotically cheaper" true
    (LA_cls.reads_per_propose ~procs:32 < LA_scan.reads_per_propose ~procs:32)

let test_measured_cost_matches () =
  (* measured solo steps = reads + writes per propose *)
  List.iter
    (fun procs ->
      let program () =
        let t = LA_cls.create ~procs in
        fun pid ->
          LA_cls.propose (LA_cls.attach t (ctx ~procs pid)) (PS.singleton pid)
      in
      let d = Pram.Driver.create ~procs program in
      ignore (Pram.Driver.run_solo d 0);
      let levels =
        let rec go l = if 1 lsl l >= procs then l else go (l + 1) in
        go 0
      in
      check_int
        (Printf.sprintf "classifier steps at n=%d" procs)
        (levels * (procs + 1))
        (Pram.Driver.steps d 0))
    [ 2; 4; 8 ]

let test_reads_per_propose_counted () =
  (* [reads_per_propose] pinned as an equality against the counting
     backend at procs 1..8: a solo propose performs exactly
     ceil(log2 n) levels of n slot reads (plus one write per level,
     not part of the read formula). *)
  for procs = 1 to 8 do
    let recorder = Metrics.Recorder.create ~procs in
    let module M =
      Runtime.Instrument
        (Pram.Memory.Direct)
        (struct
          let sink = Runtime.Sink.make ~metrics:recorder ()
        end)
    in
    let module C = Snapshot.Lattice_agreement.Classifier (M) in
    let t = C.create ~procs in
    Runtime.set_pid 0;
    ignore (C.propose (C.attach t (ctx ~procs 0)) (PS.singleton 0));
    check_int
      (Printf.sprintf "classifier reads at n=%d" procs)
      (C.reads_per_propose ~procs)
      (Metrics.Recorder.reads recorder ~pid:0)
  done

let test_exhaustive_two_procs () =
  let program () =
    let t = LA_cls.create ~procs:2 in
    fun pid ->
      LA_cls.propose (LA_cls.attach t (ctx ~procs:2 pid)) (PS.singleton pid)
  in
  let outcome =
    Pram.Explore.exhaustive ~max_crashes:1 ~procs:2 program (fun d _ ->
        la_properties (module LA_cls) ~procs:2 d)
  in
  check_bool "classifier exhaustively correct (with crashes)" true
    (Pram.Explore.ok outcome)

let qcheck_wait_free =
  QCheck.Test.make ~name:"classifier propose completes solo" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound 60))
    (fun (seed, prefix_len) ->
      let procs = 4 in
      let program () =
        let t = LA_cls.create ~procs in
        fun pid ->
          LA_cls.propose (LA_cls.attach t (ctx ~procs pid)) (PS.singleton pid)
      in
      let d = Pram.Driver.create ~procs program in
      let sched = Pram.Scheduler.random ~seed () in
      for _ = 1 to prefix_len do
        match sched d with
        | Pram.Scheduler.Step p -> Pram.Driver.step d p
        | _ -> ()
      done;
      for p = 1 to procs - 1 do
        Pram.Driver.crash d p
      done;
      (not (Pram.Driver.runnable d 0))
      || Pram.Driver.run_solo ~max_steps:100 d 0)

let () =
  Alcotest.run "lattice_agreement"
    [
      ( "lattice agreement",
        [
          Alcotest.test_case "sequential containment" `Quick test_sequential;
          Alcotest.test_case "own pid required" `Quick test_propose_requires_own_pid;
          Alcotest.test_case "cost formulas" `Quick test_costs;
          Alcotest.test_case "measured cost matches" `Quick
            test_measured_cost_matches;
          Alcotest.test_case "reads_per_propose counted, procs 1..8" `Quick
            test_reads_per_propose_counted;
          Alcotest.test_case "exhaustive n=2 with crashes" `Quick
            test_exhaustive_two_procs;
          QCheck_alcotest.to_alcotest
            (qcheck_properties "scan LA" (module LA_scan));
          QCheck_alcotest.to_alcotest
            (qcheck_properties "classifier LA" (module LA_cls));
          QCheck_alcotest.to_alcotest qcheck_wait_free;
        ] );
    ]

(* Native-backend tests: the same algorithms on real OCaml domains with
   Atomic registers.  Histories are recorded with the ticketed
   Concurrent_recorder and checked by the same linearizability oracle as
   the simulator tests — demonstrating that nothing here is a simulator
   artifact.

   Caveat on methodology: the ticket is taken at the invocation /
   response boundaries, so the recorded order is a sound real-time
   approximation (an operation's ticket interval contains its actual
   span).  A history accepted by the checker under this order is
   genuinely linearizable; rejection would be a true violation. *)

let procs = 3
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ctx pid = Runtime.Ctx.make ~procs ~pid ()

module C = Universal.Direct.Counter (Pram.Native.Versioned)
module G = Universal.Direct.Gset (Pram.Native.Versioned)
module MR = Universal.Direct.Max_register (Pram.Native.Versioned)
module Arr = Snapshot.Snapshot_array.Make (Snapshot.Slot_value.Int) (Pram.Native.Versioned)
module AB = Snapshot.Afek_bounded.Make (Snapshot.Slot_value.Int) (Pram.Native.Mem)
module AA = Agreement.Approx_agreement.Make (Pram.Native.Mem)
module Check_counter = Lincheck.Make (Spec.Counter_spec)
module Check_maxreg = Lincheck.Make (Spec.Max_register_spec)
module Arr_spec =
  Snapshot.Array_spec.Make
    (Snapshot.Slot_value.Int)
    (struct
      let procs = 3
    end)

module Check_arr = Lincheck.Make (Arr_spec)

(* run one round of a history-producing parallel workload and check it *)
let rounds = 30

let test_counter_linearizable_on_domains () =
  for _ = 1 to rounds do
    let recorder = Spec.History.Concurrent_recorder.create () in
    let t = C.create ~procs in
    let _ =
      Pram.Native.run_parallel ~procs (fun pid ->
          let h = C.attach t (ctx pid) in
          ignore
            (Spec.History.Concurrent_recorder.record recorder ~pid
               (Spec.Counter_spec.Inc (pid + 1)) (fun () ->
                 C.inc h (pid + 1);
                 Spec.Counter_spec.Unit));
          ignore
            (Spec.History.Concurrent_recorder.record recorder ~pid
               Spec.Counter_spec.Read (fun () ->
                 Spec.Counter_spec.Value (C.read h))))
    in
    check_bool "counter history linearizable" true
      (Check_counter.is_linearizable
         (Spec.History.Concurrent_recorder.events recorder));
    check_int "final value" 6 (C.read (C.attach t (ctx 0)))
  done

let test_snapshot_array_linearizable_on_domains () =
  for _ = 1 to rounds do
    let recorder = Spec.History.Concurrent_recorder.create () in
    let t = Arr.create ~procs in
    let _ =
      Pram.Native.run_parallel ~procs (fun pid ->
          let h = Arr.attach t (ctx pid) in
          ignore
            (Spec.History.Concurrent_recorder.record recorder ~pid
               (`Update (pid, pid + 10)) (fun () ->
                 Arr.update h (pid + 10);
                 `Unit));
          ignore
            (Spec.History.Concurrent_recorder.record recorder ~pid `Snapshot
               (fun () -> `View (Arr.snapshot h))))
    in
    check_bool "snapshot history linearizable" true
      (Check_arr.is_linearizable
         (Spec.History.Concurrent_recorder.events recorder))
  done

let test_bounded_afek_linearizable_on_domains () =
  for _ = 1 to rounds do
    let recorder = Spec.History.Concurrent_recorder.create () in
    let t = AB.create ~procs in
    let _ =
      Pram.Native.run_parallel ~procs (fun pid ->
          let h = AB.attach t (ctx pid) in
          ignore
            (Spec.History.Concurrent_recorder.record recorder ~pid
               (`Update (pid, pid + 10)) (fun () ->
                 AB.update h (pid + 10);
                 `Unit));
          ignore
            (Spec.History.Concurrent_recorder.record recorder ~pid `Snapshot
               (fun () -> `View (AB.snapshot h))))
    in
    check_bool "bounded afek history linearizable" true
      (Check_arr.is_linearizable
         (Spec.History.Concurrent_recorder.events recorder))
  done

let test_max_register_on_domains () =
  for _ = 1 to rounds do
    let recorder = Spec.History.Concurrent_recorder.create () in
    let t = MR.create ~procs in
    let _ =
      Pram.Native.run_parallel ~procs (fun pid ->
          let h = MR.attach t (ctx pid) in
          ignore
            (Spec.History.Concurrent_recorder.record recorder ~pid
               (Spec.Max_register_spec.Write_max ((pid + 1) * 5)) (fun () ->
                 MR.write_max h ((pid + 1) * 5);
                 Spec.Max_register_spec.Unit));
          ignore
            (Spec.History.Concurrent_recorder.record recorder ~pid
               Spec.Max_register_spec.Read_max (fun () ->
                 Spec.Max_register_spec.Value (MR.read_max h))))
    in
    check_bool "max register history linearizable" true
      (Check_maxreg.is_linearizable
         (Spec.History.Concurrent_recorder.events recorder));
    check_int "final max" 15 (MR.read_max (MR.attach t (ctx 0)))
  done

let test_gset_on_domains () =
  let t = G.create ~procs in
  let _ =
    Pram.Native.run_parallel ~procs (fun pid ->
        let h = G.attach t (ctx pid) in
        for i = 0 to 9 do
          G.add h ((pid * 10) + i)
        done)
  in
  check_int "all elements present" 30
    (List.length (G.members (G.attach t (ctx 0))))

let test_agreement_on_domains () =
  for round = 1 to rounds do
    let epsilon = 0.25 in
    let inputs = [| 0.0; float_of_int round; float_of_int round /. 2.0 |] in
    let t = AA.create ~procs ~epsilon in
    let outputs =
      Pram.Native.run_parallel ~procs (fun pid ->
          let h = AA.attach t (ctx pid) in
          AA.input h inputs.(pid);
          AA.output h)
    in
    let lo = List.fold_left Float.min infinity outputs in
    let hi = List.fold_left Float.max neg_infinity outputs in
    check_bool "epsilon agreement on domains" true (hi -. lo < epsilon);
    check_bool "validity on domains" true
      (List.for_all (fun v -> v >= 0.0 && v <= float_of_int round) outputs)
  done

let test_counter_torture () =
  (* heavier contention: many increments per domain, exact total *)
  let t = C.create ~procs in
  let per = 2_000 in
  let _ =
    Pram.Native.run_parallel ~procs (fun pid ->
        let h = C.attach t (ctx pid) in
        for _ = 1 to per do
          C.inc h 1
        done)
  in
  check_int "no lost updates" (procs * per) (C.read (C.attach t (ctx 0)))

let () =
  Alcotest.run "native"
    [
      ( "domains",
        [
          Alcotest.test_case "counter linearizable" `Slow
            test_counter_linearizable_on_domains;
          Alcotest.test_case "snapshot array linearizable" `Slow
            test_snapshot_array_linearizable_on_domains;
          Alcotest.test_case "bounded afek linearizable" `Slow
            test_bounded_afek_linearizable_on_domains;
          Alcotest.test_case "max register linearizable" `Slow
            test_max_register_on_domains;
          Alcotest.test_case "gset" `Quick test_gset_on_domains;
          Alcotest.test_case "approximate agreement" `Slow
            test_agreement_on_domains;
          Alcotest.test_case "counter torture" `Slow test_counter_torture;
        ] );
    ]

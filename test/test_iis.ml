(* Tests for the immediate snapshot (Borowsky-Gafni) and the iterated
   model (Hoest-Shavit's setting, cited after Lemma 6).

   The immediate snapshot's three properties — self-inclusion,
   containment, immediacy — are checked under random schedules (n up to
   5, with crashes) and EXHAUSTIVELY for n = 2.  The IIS agreement tests
   realize the tight constants: the 2-process optimal rule shrinks the
   gap by exactly 3 per layer under every schedule, so
   ceil(log3(delta/eps)) layers always suffice. *)

let check_bool = Alcotest.(check bool)

let ctx ~procs pid = Runtime.Ctx.make ~procs ~pid ()

module IS = Snapshot.Immediate_snapshot.Make (Snapshot.Slot_value.Int) (Pram.Memory.Sim)

(* the three IS properties over a set of (pid, view) results *)
let is_properties results =
  let module IM = Map.Make (Int) in
  let views = IM.of_seq (List.to_seq results) in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  IM.for_all
    (fun p view ->
      (* self-inclusion *)
      List.exists (fun (q, _) -> q = p) view
      && (* containment + immediacy against every other view *)
      IM.for_all
        (fun q view_q ->
          let containment = subset view view_q || subset view_q view in
          let immediacy =
            (not (List.exists (fun (r, _) -> r = q) view))
            || subset view_q view
          in
          containment && immediacy)
        views)
    views

let run_is ~procs ~seed ~crash_prob =
  let program () =
    let t = IS.create ~procs in
    fun pid -> IS.participate (IS.attach t (ctx ~procs pid)) (pid + 10)
  in
  let d = Pram.Driver.create ~procs program in
  Pram.Scheduler.run
    (Pram.Scheduler.random ~crash_prob ~min_alive:1 ~seed ())
    d;
  for p = 0 to procs - 1 do
    if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
  done;
  List.filter_map
    (fun p -> Option.map (fun v -> (p, v)) (Pram.Driver.result d p))
    (List.init procs Fun.id)

let qcheck_is_properties =
  QCheck.Test.make
    ~name:"immediate snapshot: self-inclusion, containment, immediacy"
    ~count:500
    QCheck.(triple (int_bound 1_000_000) (int_range 2 5) bool)
    (fun (seed, procs, crash) ->
      is_properties
        (run_is ~procs ~seed ~crash_prob:(if crash then 0.05 else 0.0)))

let test_is_exhaustive_two_procs () =
  let program () =
    let t = IS.create ~procs:2 in
    fun pid -> IS.participate (IS.attach t (ctx ~procs:2 pid)) (pid + 10)
  in
  let outcome =
    Pram.Explore.exhaustive ~max_crashes:1 ~max_schedules:2_000_000 ~procs:2
      program
      (fun d _ ->
        is_properties
          (List.filter_map
             (fun p -> Option.map (fun v -> (p, v)) (Pram.Driver.result d p))
             [ 0; 1 ]))
  in
  check_bool "IS properties on every interleaving (with crashes)" true
    (Pram.Explore.ok outcome)

let test_is_sequential () =
  let module IS_d =
    Snapshot.Immediate_snapshot.Make (Snapshot.Slot_value.Int) (Pram.Memory.Direct)
  in
  let t = IS_d.create ~procs:3 in
  let v0 = IS_d.participate (IS_d.attach t (ctx ~procs:3 0)) 100 in
  check_bool "solo view is singleton" true (v0 = [ (0, 100) ]);
  let v1 = IS_d.participate (IS_d.attach t (ctx ~procs:3 1)) 200 in
  check_bool "second sees both" true (v1 = [ (0, 100); (1, 200) ])

(* --- IIS approximate agreement -------------------------------------------- *)

module IIS = Snapshot.Iis.Make (Pram.Memory.Sim_v)

let run_iis_agreement ?layer ~procs ~layers ~inputs ~seed ~rule () =
  let program () =
    let t = IIS.create ?layer ~procs ~layers () in
    fun pid ->
      let h = IIS.attach t (ctx ~procs pid) in
      IIS.run h ~rule:(rule h) inputs.(pid)
  in
  let d = Pram.Driver.create ~procs program in
  Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
  for p = 0 to procs - 1 do
    if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
  done;
  List.filter_map (Pram.Driver.result d) (List.init procs Fun.id)

let spread outputs =
  match outputs with
  | [] -> 0.0
  | x :: rest ->
      List.fold_left Float.max x rest -. List.fold_left Float.min x rest

let qcheck_two_proc_optimal_rate =
  (* exactly ceil(log3(delta/eps)) layers suffice for 2 processes, under
     any schedule: with L layers, the gap is at most delta / 3^L *)
  QCheck.Test.make ~name:"IIS 2-proc rule shrinks by 3 per layer" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_range 1 6))
    (fun (seed, layers) ->
      let delta = 1.0 in
      let inputs = [| 0.0; delta |] in
      let outputs =
        run_iis_agreement ~procs:2 ~layers ~inputs ~seed
          ~rule:(fun h -> IIS.two_proc_optimal h) ()
      in
      let bound = delta /. Float.pow 3.0 (float_of_int layers) in
      spread outputs <= bound +. 1e-12)

let qcheck_two_proc_validity =
  QCheck.Test.make ~name:"IIS agreement validity" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_range 1 5))
    (fun (seed, layers) ->
      let inputs = [| 2.0; 5.0 |] in
      let outputs =
        run_iis_agreement ~procs:2 ~layers ~inputs ~seed
          ~rule:(fun h -> IIS.two_proc_optimal h) ()
      in
      List.for_all (fun v -> v >= 2.0 && v <= 5.0) outputs)

let qcheck_midpoint_rate =
  (* the midpoint rule halves the range per layer for any n *)
  QCheck.Test.make ~name:"IIS midpoint rule shrinks by 2 per layer"
    ~count:300
    QCheck.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 1 6))
    (fun (seed, procs, layers) ->
      let delta = 1.0 in
      let inputs =
        Array.init procs (fun p ->
            if p = 0 then 0.0
            else if p = 1 then delta
            else delta /. 2.0)
      in
      let outputs =
        run_iis_agreement ~procs ~layers ~inputs ~seed
          ~rule:(fun _h -> IIS.midpoint) ()
      in
      let bound = delta /. Float.pow 2.0 (float_of_int layers) in
      spread outputs <= bound +. 1e-12)

let qcheck_midpoint_rate_lattice_layers =
  (* midpoint agreement survives swapping immediate layers for
     scan-based atomic-snapshot layers on the Lattice variant: the
     log2 rate only needs self-inclusion + containment, both of which
     the O(n log n) lattice scan provides *)
  QCheck.Test.make
    ~name:"IIS midpoint rule on Snapshot Lattice layers shrinks by 2"
    ~count:150
    QCheck.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 1 5))
    (fun (seed, procs, layers) ->
      let delta = 1.0 in
      let inputs =
        Array.init procs (fun p ->
            if p = 0 then 0.0
            else if p = 1 then delta
            else delta /. 2.0)
      in
      let outputs =
        run_iis_agreement
          ~layer:(Snapshot.Iis.Snapshot Snapshot.Scan.Lattice)
          ~procs ~layers ~inputs ~seed
          ~rule:(fun _h -> IIS.midpoint) ()
      in
      let bound = delta /. Float.pow 2.0 (float_of_int layers) in
      spread outputs <= bound +. 1e-12)

let test_snapshot_layer_views_sequential () =
  (* self-inclusion and containment on a lone Snapshot layer, run
     sequentially over the Direct backend via run's rule hook *)
  let module IIS_d = Snapshot.Iis.Make (Pram.Memory.Direct_v) in
  let t =
    IIS_d.create ~layer:(Snapshot.Iis.Snapshot Snapshot.Scan.Lattice)
      ~procs:3 ~layers:1 ()
  in
  let views = ref [] in
  let observe pid ~own:_ ~view =
    views := (pid, view) :: !views;
    0.0
  in
  ignore (IIS_d.run (IIS_d.attach t (ctx ~procs:3 0)) ~rule:(observe 0) 10.0);
  ignore (IIS_d.run (IIS_d.attach t (ctx ~procs:3 2)) ~rule:(observe 2) 30.0);
  check_bool "first view is own singleton" true
    (List.assoc 0 !views = [ (0, 10.0) ]);
  check_bool "second view contains first" true
    (List.assoc 2 !views = [ (0, 10.0); (2, 30.0) ])

let test_layers_needed () =
  check_bool "log3" true
    (IIS.layers_needed ~base:3.0 ~delta:1.0 ~epsilon:(1.0 /. 27.0) = 3);
  check_bool "log2" true
    (IIS.layers_needed ~base:2.0 ~delta:8.0 ~epsilon:1.0 = 3);
  check_bool "already close" true
    (IIS.layers_needed ~base:3.0 ~delta:0.5 ~epsilon:1.0 = 0)

let test_two_proc_exhaustive_one_layer () =
  (* one layer, exhaustive: the gap after the layer is at most 1/3 on
     EVERY interleaving — the tight constant, verified *)
  let program () =
    let t = IIS.create ~procs:2 ~layers:1 () in
    fun pid ->
      let h = IIS.attach t (ctx ~procs:2 pid) in
      IIS.run h ~rule:(IIS.two_proc_optimal h)
        (if pid = 0 then 0.0 else 1.0)
  in
  let outcome =
    Pram.Explore.exhaustive ~max_schedules:2_000_000 ~procs:2 program
      (fun d _ ->
        match (Pram.Driver.result d 0, Pram.Driver.result d 1) with
        | Some a, Some b -> Float.abs (a -. b) <= (1.0 /. 3.0) +. 1e-12
        | _ -> false)
  in
  check_bool "gap <= 1/3 after one layer, all interleavings" true
    (Pram.Explore.ok outcome)

let () =
  Alcotest.run "iis"
    [
      ( "immediate snapshot",
        [
          Alcotest.test_case "sequential views" `Quick test_is_sequential;
          QCheck_alcotest.to_alcotest qcheck_is_properties;
          Alcotest.test_case "exhaustive n=2 (with crashes)" `Slow
            test_is_exhaustive_two_procs;
        ] );
      ( "iterated agreement",
        [
          QCheck_alcotest.to_alcotest qcheck_two_proc_optimal_rate;
          QCheck_alcotest.to_alcotest qcheck_two_proc_validity;
          QCheck_alcotest.to_alcotest qcheck_midpoint_rate;
          QCheck_alcotest.to_alcotest qcheck_midpoint_rate_lattice_layers;
          Alcotest.test_case "snapshot-layer views, sequential" `Quick
            test_snapshot_layer_views_sequential;
          Alcotest.test_case "layers_needed" `Quick test_layers_needed;
          Alcotest.test_case "tight constant, exhaustive one layer" `Slow
            test_two_proc_exhaustive_one_layer;
        ] );
    ]

(* Differential tests for the incremental universal construction (PR 5).

   The memoized [Incremental] mode of [Universal.Construction] must be
   observationally indistinguishable from the from-scratch [Reference]
   mode:

   - byte-identical responses on EVERY schedule — checked exhaustively
     (DPOR) for procs <= 3, including crash branches, and on random
     commute/overwrite scripts for procs 1..4;
   - an unchanged synchronization layer — the per-process simulator step
     counts (every atomic register access) must match exactly, since the
     memo only replaces local linearization work;
   - O(delta) local work — a sequential run of m operations must replay
     history entries O(m) times in total where the reference replays
     Theta(m^2), counted both through [stats] and through the
     ["replay %d entries"] annotations in the observer sink.

   See DESIGN.md section 10 for why the merge rules make this sound. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ctx ~procs pid = Runtime.Ctx.make ~procs ~pid ()

(* --- generic differential machinery --------------------------------------- *)

module Diff (O : Spec.Object_spec.S) = struct
  module U = Universal.Construction.Make (O) (Pram.Memory.Sim_v)

  (* A program running [script] with [mode] handles, appending each
     response (with its pid) to [out] as it is produced, so crashed
     processes still contribute their completed prefix. *)
  let program ~mode ~procs ~script out () =
    out := [];
    let t = U.create ~procs in
    fun pid ->
      let h = U.attach ~mode t (ctx ~procs pid) in
      List.iter
        (fun op ->
          let r = U.execute h op in
          out := (pid, r) :: !out)
        (script pid)

  (* Both runs execute the same script under the same schedule, so the
     k-th completed operation is the same (pid, op) in both — comparing
     (pid, response) sequences compares responses pointwise. *)
  let same_responses a b =
    List.length a = List.length b
    && List.for_all2
         (fun (p1, r1) (p2, r2) -> p1 = p2 && O.equal_response r1 r2)
         a b

  (* Exhaustively explore the Incremental program; for every enumerated
     schedule, replay the SAME encoded schedule against the Reference
     program and demand identical responses and identical per-pid step
     counts.  Returns the explore outcome for the caller to gate on. *)
  let explore_diff ?mode ?max_schedules ?max_crashes ~procs ~script () =
    let out_inc = ref [] and out_ref = ref [] in
    let inc_program = program ~mode:U.Incremental ~procs ~script out_inc in
    let ref_program = program ~mode:U.Reference ~procs ~script out_ref in
    Pram.Explore.exhaustive ?mode ?max_schedules ?max_crashes ~procs
      inc_program
      (fun d sched ->
        let d_ref, _ =
          Pram.Explore.replay_encoded ~procs ref_program sched
        in
        same_responses (List.rev !out_inc) (List.rev !out_ref)
        && List.for_all
             (fun p -> Pram.Driver.steps d p = Pram.Driver.steps d_ref p)
             (List.init procs Fun.id))

  (* One random schedule (seeded), both modes: identical responses and
     per-pid steps.  Completion after the scheduler gives up is part of
     the recorded schedule, so the replay is exact. *)
  let random_diff ~procs ~seed ~script =
    let out_inc = ref [] and out_ref = ref [] in
    let inc_program = program ~mode:U.Incremental ~procs ~script out_inc in
    let ref_program = program ~mode:U.Reference ~procs ~script out_ref in
    let d = Pram.Driver.create ~procs inc_program in
    Pram.Scheduler.run ~max_steps:5_000_000
      (Pram.Scheduler.random ~seed ())
      d;
    for p = 0 to procs - 1 do
      if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
    done;
    let d_ref =
      Pram.Driver.replay ~procs ref_program (Pram.Driver.schedule d)
    in
    same_responses (List.rev !out_inc) (List.rev !out_ref)
    && List.for_all
         (fun p -> Pram.Driver.steps d p = Pram.Driver.steps d_ref p)
         (List.init procs Fun.id)
end

module Diff_counter = Diff (Spec.Counter_spec)
module Diff_gset = Diff (Spec.Gset_spec)
module Diff_sticky = Diff (Spec.Sticky_spec)

(* --- exhaustive differential (procs <= 3, DPOR) --------------------------- *)

let test_explore_diff_counter_p2 () =
  (* Inc/Read commute with reads; Reset overwrites: both the merge path
     and the rebuild/non-canonical path are hit across the schedules. *)
  let script = function
    | 0 -> Spec.Counter_spec.[ Inc 1; Read ]
    | _ -> Spec.Counter_spec.[ Reset 5 ]
  in
  let outcome =
    Diff_counter.explore_diff ~mode:Pram.Explore.Dpor ~procs:2 ~script ()
  in
  check_bool "all DPOR schedules agree (counter, procs 2)" true
    (Pram.Explore.ok outcome);
  check_bool "non-trivial schedule count" true
    (outcome.Pram.Explore.explored > 10)

let test_explore_diff_gset_p3 () =
  (* Complete DPOR closure at procs 3: two two-op processes (the third
     stays idle but contributes its anchor slot to every scan), with
     [Members] making the schedule-dependent state visible in the
     responses.  Two ops per process matter here: the construction runs
     the Adaptive scan, whose uncontended fast path touches so few
     conflicting registers that single-op closures collapse to a
     handful of classes — the second round makes the fast/full
     interleavings reachable.  (Bounded retry — PR 10 — absorbs single
     invalidations that used to escalate, so the closure is ~90 classes
     where it was ~2k; scan-level escalation coverage lives in
     test_snapshot's retries:1 differential and test_metrics' forced
     escalation.) *)
  let script = function
    | 0 -> Spec.Gset_spec.[ Add 1; Members ]
    | 1 -> Spec.Gset_spec.[ Add 2; Members ]
    | _ -> []
  in
  let outcome =
    Diff_gset.explore_diff ~mode:Pram.Explore.Dpor ~procs:3 ~script ()
  in
  check_bool "all DPOR schedules agree (gset, procs 3)" true
    (Pram.Explore.ok outcome);
  check_bool "non-trivial schedule count" true
    (outcome.Pram.Explore.explored > 50)

let test_explore_diff_gset_p3_sampled () =
  (* Three active processes including the overwriting [Clear].  Under
     the double-collect scan this closure exceeded 10^6 classes and had
     to be sampled; the Adaptive fast path shrinks it to a few hundred
     (a few dozen with bounded retry), so the complete closure is now
     explored (the budget is kept as a safety net only). *)
  let script = function
    | 0 -> Spec.Gset_spec.[ Add 1 ]
    | 1 -> Spec.Gset_spec.[ Clear ]
    | _ -> Spec.Gset_spec.[ Members ]
  in
  let outcome =
    Diff_gset.explore_diff ~mode:Pram.Explore.Dpor ~max_schedules:60_000
      ~procs:3 ~script ()
  in
  check_bool "all DPOR schedules agree (gset, all active)" true
    (Pram.Explore.ok outcome);
  check_bool "non-trivial schedule count" true
    (outcome.Pram.Explore.explored > 10)

let test_explore_diff_counter_crashes () =
  (* Naive exploration with crash branching: a crashed process's
     published-but-unlinearized entry must be merged identically by both
     modes.  The naive space at this size is too big to finish, so gate
     on "no failures among the first N schedules" instead of [ok]. *)
  let script = function
    | 0 -> Spec.Counter_spec.[ Inc 1 ]
    | _ -> Spec.Counter_spec.[ Reset 5 ]
  in
  let outcome =
    Diff_counter.explore_diff ~mode:Pram.Explore.Naive ~max_crashes:1
      ~max_schedules:4_000 ~procs:2 ~script ()
  in
  check_bool "no disagreement under crashes" true
    (outcome.Pram.Explore.failures = []);
  (* with the adaptive scan the naive crash-branching space at this
     size finishes inside the budget (~1.4k schedules) *)
  check_bool "explored a real sample" true
    (outcome.Pram.Explore.explored >= 1_000)

(* --- random-script differential (procs 1..4) ------------------------------ *)

let qcheck_diff_random ~name ~random_diff ~gen_op =
  QCheck.Test.make ~name ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, procs) ->
      let rng = Random.State.make [| seed; procs; 0x1ac |] in
      let script =
        Array.init procs (fun _ ->
            List.init (1 + Random.State.int rng 4) (fun _ -> gen_op rng))
      in
      random_diff ~procs ~seed ~script:(fun pid -> script.(pid)))

let qcheck_diff_counter =
  qcheck_diff_random ~name:"incremental = reference: counter, random"
    ~random_diff:Diff_counter.random_diff ~gen_op:(fun rng ->
      match Random.State.int rng 8 with
      | 0 | 1 | 2 -> Spec.Counter_spec.Inc (1 + Random.State.int rng 5)
      | 3 | 4 -> Spec.Counter_spec.Dec (1 + Random.State.int rng 5)
      | 5 -> Spec.Counter_spec.Reset (Random.State.int rng 10)
      | _ -> Spec.Counter_spec.Read)

let qcheck_diff_gset =
  qcheck_diff_random ~name:"incremental = reference: gset, random"
    ~random_diff:Diff_gset.random_diff ~gen_op:(fun rng ->
      match Random.State.int rng 6 with
      | 0 | 1 | 2 -> Spec.Gset_spec.Add (Random.State.int rng 8)
      | 3 -> Spec.Gset_spec.Clear
      | _ -> Spec.Gset_spec.Members)

let qcheck_diff_sticky =
  (* Sticky writes neither commute nor overwrite (Property 1 rejects the
     spec), which drives the memo permanently non-canonical: the
     differential identity must survive the fallback-forever path too. *)
  qcheck_diff_random ~name:"incremental = reference: sticky, random"
    ~random_diff:Diff_sticky.random_diff ~gen_op:(fun rng ->
      if Random.State.int rng 3 = 0 then Spec.Sticky_spec.Read_sticky
      else Spec.Sticky_spec.Stick (Random.State.int rng 5))

(* --- O(delta) regression --------------------------------------------------- *)

module UC_direct = Universal.Construction.Make (Spec.Counter_spec) (Pram.Memory.Direct_v)

(* Count the history entries a handle replayed, from the journal's
   ["replay %d entries"] annotations — the observer-sink view of the
   same quantity [stats] reports as [spec_replays]. *)
let replays_in_journal journal =
  List.fold_left
    (fun acc (e : Tracing.event) ->
      match e.Tracing.ev with
      | Tracing.Annotate s -> (
          try Scanf.sscanf s "replay %d entries" (fun n -> acc + n)
          with Scanf.Scan_failure _ | Failure _ | End_of_file -> acc)
      | _ -> acc)
    0 (Tracing.Journal.events journal)

let run_sequential ~mode ~procs ~per_proc =
  (* Round-robin at operation granularity: p0 op, p1 op, ... — every
     operation sees all previous ones, so the reference replays the whole
     history each time while the memo only absorbs the new entries. *)
  let journal = Tracing.Journal.create ~procs () in
  let sink = Runtime.Sink.make ~journal () in
  let t = UC_direct.create ~procs in
  let handles =
    Array.init procs (fun pid ->
        UC_direct.attach ~mode t (Runtime.Ctx.make ~sink ~procs ~pid ()))
  in
  for _round = 1 to per_proc do
    Array.iteri
      (fun pid h ->
        ignore (UC_direct.execute h (Spec.Counter_spec.Inc (pid + 1))))
      handles
  done;
  let stats_total =
    Array.fold_left
      (fun acc h -> acc + (UC_direct.stats h).spec_replays)
      0 handles
  in
  (stats_total, replays_in_journal journal)

let test_odelta_regression () =
  let procs = 3 and per_proc = 12 in
  let m = procs * per_proc in
  let inc_stats, inc_journal =
    run_sequential ~mode:UC_direct.Incremental ~procs ~per_proc
  in
  let ref_stats, ref_journal =
    run_sequential ~mode:UC_direct.Reference ~procs ~per_proc
  in
  (* the two accounting channels must agree with each other *)
  check_int "incremental: stats = journal" inc_stats inc_journal;
  check_int "reference: stats = journal" ref_stats ref_journal;
  (* each entry is merged at most once by each OTHER process's memo:
     total incremental replays <= procs * m, i.e. c*m with c = procs *)
  check_bool "incremental replays are O(m)" true (inc_stats <= procs * m);
  (* the reference replays the full i-entry history before op i+1:
     sum_{i<m} i = m(m-1)/2 *)
  check_int "reference replays are m(m-1)/2" (m * (m - 1) / 2) ref_stats;
  check_bool "memoization actually wins" true (inc_stats * 4 < ref_stats)

let test_odelta_single_process () =
  (* A solo process never replays at all: its own entries are committed
     with their stored responses, no [O.apply] needed. *)
  let inc_stats, inc_journal =
    run_sequential ~mode:UC_direct.Incremental ~procs:1 ~per_proc:20
  in
  check_int "solo incremental replays" 0 inc_stats;
  check_int "solo incremental journal agrees" 0 inc_journal

let test_stats_shape () =
  (* White-box: a commuting two-process run merges without rebuilding and
     stays canonical; injecting Reset from a peer forces a rebuild. *)
  let t = UC_direct.create ~procs:2 in
  let h0 = UC_direct.attach t (ctx ~procs:2 0) in
  let h1 = UC_direct.attach t (ctx ~procs:2 1) in
  let open Spec.Counter_spec in
  ignore (UC_direct.execute h0 (Inc 1));
  ignore (UC_direct.execute h1 (Inc 2));
  ignore (UC_direct.execute h0 Read);
  let s0 = UC_direct.stats h0 in
  check_bool "commuting run stays canonical" true s0.canonical;
  check_int "no rebuilds on commuting run" 0 s0.rebuilds;
  check_bool "merged the peer's entries" true (s0.merges >= 1);
  check_int "h0 committed everything it saw" 3 s0.committed;
  (* Reference handles report their replay count but never merge *)
  let href = UC_direct.attach ~mode:UC_direct.Reference t (ctx ~procs:2 1) in
  ignore (UC_direct.execute href Read);
  let sref = UC_direct.stats href in
  check_int "reference never merges" 0 sref.merges;
  check_bool "reference replayed the history" true (sref.spec_replays >= 3)

let () =
  Alcotest.run "incremental"
    [
      ( "explore-diff",
        [
          Alcotest.test_case "counter procs 2 (DPOR, all schedules)" `Quick
            test_explore_diff_counter_p2;
          Alcotest.test_case "gset procs 3 (DPOR, all schedules)" `Quick
            test_explore_diff_gset_p3;
          Alcotest.test_case "gset procs 3, all active (DPOR sample)" `Quick
            test_explore_diff_gset_p3_sampled;
          Alcotest.test_case "counter with crash branching" `Quick
            test_explore_diff_counter_crashes;
        ] );
      ( "random-diff",
        [
          QCheck_alcotest.to_alcotest qcheck_diff_counter;
          QCheck_alcotest.to_alcotest qcheck_diff_gset;
          QCheck_alcotest.to_alcotest qcheck_diff_sticky;
        ] );
      ( "o-delta",
        [
          Alcotest.test_case "replays O(m) vs m(m-1)/2" `Quick
            test_odelta_regression;
          Alcotest.test_case "solo process never replays" `Quick
            test_odelta_single_process;
          Alcotest.test_case "stats shape" `Quick test_stats_shape;
        ] );
    ]

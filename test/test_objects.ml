(* Tests for the extended object zoo: the sticky register (negative
   example #2 — consensus-strength, fails Property 1), the histogram
   (Property-1, constructible both generically and directly), and vector
   clocks. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ctx ~procs pid = Runtime.Ctx.make ~procs ~pid ()

(* --- sticky register: the algebra decides constructibility ---------------- *)

let sticky_negative_tests =
  let module S = Spec.Sticky_spec in
  [
    Alcotest.test_case "sticky fails Property 1" `Quick (fun () ->
        check_bool "stick(1)/stick(2) unconstructible pair" false
          (Spec.Object_spec.property1_pair (module S) (S.Stick 1) (S.Stick 2)));
    Alcotest.test_case "property1 gate rejects sticky" `Quick (fun () ->
        check_bool "rejected" true
          (match
             Universal.Construction.check_property1
               (module S)
               [ S.Stick 1; S.Stick 2; S.Read_sticky ]
           with
          | Error _ -> true
          | Ok () -> false));
    Alcotest.test_case "first write wins sequentially" `Quick (fun () ->
        let s1, _ = S.apply S.initial (S.Stick 7) in
        let s2, _ = S.apply s1 (S.Stick 9) in
        let _, r = S.apply s2 S.Read_sticky in
        check_bool "kept 7" true (r = S.Value (Some 7)));
    Alcotest.test_case "contrast: plain register passes the gate" `Quick
      (fun () ->
        let module R = Spec.Rw_register_spec in
        check_bool "rw register accepted" true
          (Universal.Construction.check_property1
             (module R)
             [ R.Write 1; R.Write 2; R.Read ]
          = Ok ()));
  ]

(* sticky declared relations sound *)
let sticky_declarations =
  let module S = Spec.Sticky_spec in
  let module A = Spec.Object_spec.Algebra (S) in
  let op_gen =
    QCheck.oneof
      [
        QCheck.map (fun v -> S.Stick v) (QCheck.int_bound 5);
        QCheck.always S.Read_sticky;
      ]
  in
  QCheck.Test.make ~name:"sticky: declared relations sound" ~count:300
    QCheck.(triple (small_list op_gen) op_gen op_gen)
    (fun (prefix, p, q) ->
      let s = A.reach prefix in
      match A.check_declarations_at s p q with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* --- histogram spec: declarations, Property 1, universal construction ---- *)

module H = Spec.Histogram_spec

let histogram_op_gen =
  QCheck.oneof
    [
      QCheck.map (fun (b, w) -> H.Observe (b, w)) QCheck.(pair (int_bound 3) (int_bound 5));
      QCheck.map (fun b -> H.Count b) (QCheck.int_bound 3);
      QCheck.always H.Total;
      QCheck.always H.Reset_all;
    ]

let histogram_declarations =
  let module A = Spec.Object_spec.Algebra (H) in
  QCheck.Test.make ~name:"histogram: declared relations sound" ~count:500
    QCheck.(triple (small_list histogram_op_gen) histogram_op_gen histogram_op_gen)
    (fun (prefix, p, q) ->
      let s = A.reach prefix in
      match A.check_declarations_at s p q with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

let histogram_property1 =
  QCheck.Test.make ~name:"histogram: Property 1" ~count:500
    QCheck.(pair histogram_op_gen histogram_op_gen)
    (fun (p, q) -> Spec.Object_spec.property1_pair (module H) p q)

module UH = Universal.Construction.Make (H) (Pram.Memory.Sim_v)
module Check_h = Lincheck.Make (H)

let qcheck_universal_histogram_linearizable =
  QCheck.Test.make ~name:"universal histogram linearizable" ~count:150
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (seed, crash) ->
      let recorder = Spec.History.Recorder.create () in
      let script pid =
        match pid with
        | 0 -> [ H.Observe (1, 2); H.Count 1 ]
        | 1 -> [ H.Observe (1, 3); H.Total ]
        | _ -> [ H.Reset_all; H.Total ]
      in
      let program () =
        let t = UH.create ~procs:3 in
        fun pid ->
          let h = UH.attach t (ctx ~procs:3 pid) in
          List.iter
            (fun op ->
              ignore
                (Spec.History.Recorder.record recorder ~pid op (fun () ->
                     UH.execute h op)))
            (script pid)
      in
      let d = Pram.Driver.create ~procs:3 program in
      Pram.Scheduler.run ~max_steps:5_000_000
        (Pram.Scheduler.random
           ~crash_prob:(if crash then 0.03 else 0.0)
           ~min_alive:1 ~seed ())
        d;
      for p = 0 to 2 do
        if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
      done;
      Check_h.is_linearizable (Spec.History.Recorder.events recorder))

(* --- direct histogram ------------------------------------------------------ *)

module DH = Universal.Direct.Histogram (Pram.Memory.Direct_v)
module DH_s = Universal.Direct.Histogram (Pram.Memory.Sim_v)

let test_direct_histogram_sequential () =
  let t = DH.create ~procs:2 in
  let h0 = DH.attach t (ctx ~procs:2 0) in
  let h1 = DH.attach t (ctx ~procs:2 1) in
  DH.observe h0 ~bucket:1 5;
  DH.observe h1 ~bucket:1 3;
  DH.observe h1 ~bucket:2 7;
  check_int "bucket 1" 8 (DH.count h0 ~bucket:1);
  check_int "bucket 2" 7 (DH.count h0 ~bucket:2);
  check_int "empty bucket" 0 (DH.count h0 ~bucket:9);
  check_int "total" 15 (DH.total h1);
  check_bool "bindings" true (DH.bindings h0 = [ (1, 8); (2, 7) ])

let test_direct_histogram_rejects_negative () =
  let t = DH.create ~procs:1 in
  let h0 = DH.attach t (ctx ~procs:1 0) in
  check_bool "negative weight rejected" true
    (try DH.observe h0 ~bucket:0 (-1); false
     with Invalid_argument _ -> true)

let qcheck_direct_histogram_concurrent_total =
  (* once quiescent, the total equals the sum of all observations *)
  QCheck.Test.make ~name:"direct histogram total converges" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let procs = 3 in
      let program () =
        let t = DH_s.create ~procs in
        fun pid ->
          let h = DH_s.attach t (ctx ~procs pid) in
          DH_s.observe h ~bucket:(pid mod 2) (pid + 1);
          DH_s.observe h ~bucket:2 1;
          DH_s.total h
      in
      let d = Pram.Driver.create ~procs program in
      Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
      let expected = (1 + 2 + 3) + 3 in
      (* after quiescence, the largest observed total must be the full sum
         and every result must be at least the caller's own contribution *)
      let results =
        List.filter_map (Pram.Driver.result d) (List.init procs Fun.id)
      in
      List.length results = procs
      && List.exists (fun t -> t = expected) results
      && List.for_all (fun t -> t <= expected) results)

(* --- vector clocks ---------------------------------------------------------- *)

module VC = Universal.Direct.Vector_clock (Pram.Memory.Direct_v)
module VC_s = Universal.Direct.Vector_clock (Pram.Memory.Sim_v)

let test_vector_clock_sequential () =
  let t = VC.create ~procs:3 in
  let v1 = VC.tick (VC.attach t (ctx ~procs:3 0)) in
  check_bool "first tick" true (v1 = [| 1; 0; 0 |]);
  let v2 = VC.tick (VC.attach t (ctx ~procs:3 1)) in
  check_bool "second tick merges" true (v2 = [| 1; 1; 0 |]);
  check_bool "v1 happened before v2" true (VC.leq v1 v2);
  check_bool "v2 not before v1" false (VC.leq v2 v1)

let test_vector_clock_observe () =
  let t = VC.create ~procs:2 in
  let h0 = VC.attach t (ctx ~procs:2 0) in
  VC.observe h0 [| 0; 41 |];
  let v = VC.tick h0 in
  check_bool "tick after observe dominates it" true (VC.leq [| 0; 41 |] v);
  check_bool "own component advanced" true (v.(0) = 1 && v.(1) = 41)

let qcheck_vector_clock_causality =
  (* a tick's result strictly dominates every vector the process
     previously obtained — causal monotonicity under any schedule *)
  QCheck.Test.make ~name:"vector clock causal monotonicity" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let procs = 3 in
      let program () =
        let t = VC_s.create ~procs in
        fun pid ->
          let h = VC_s.attach t (ctx ~procs pid) in
          let a = VC_s.tick h in
          let b = VC_s.tick h in
          (a, b)
      in
      let d = Pram.Driver.create ~procs program in
      Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
      List.for_all
        (fun p ->
          match Pram.Driver.result d p with
          | Some (a, b) -> VC.leq a b && not (VC.leq b a)
          | None -> false)
        (List.init procs Fun.id))

let qcheck_vector_clock_ticks_comparable =
  (* Unlike message-passing vector clocks, shared-memory joined clocks
     make concurrent ticks COMPARABLE (they are scan outputs — Lemma 32
     again), and two concurrent ticks may even return the same vector,
     each having absorbed the other's contribution.  What always holds:
     tick results are pairwise comparable, and each contains the
     caller's own new count. *)
  QCheck.Test.make ~name:"vector clock ticks pairwise comparable" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let procs = 3 in
      let program () =
        let t = VC_s.create ~procs in
        fun pid -> VC_s.tick (VC_s.attach t (ctx ~procs pid))
      in
      let d = Pram.Driver.create ~procs program in
      Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
      let vs =
        List.filter_map
          (fun p -> Option.map (fun v -> (p, v)) (Pram.Driver.result d p))
          (List.init procs Fun.id)
      in
      List.for_all
        (fun (p, a) ->
          a.(p) = 1
          && List.for_all (fun (_, b) -> VC.leq a b || VC.leq b a) vs)
        vs)

let () =
  Alcotest.run "objects"
    [
      ( "sticky register",
        sticky_negative_tests @ [ QCheck_alcotest.to_alcotest sticky_declarations ] );
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest histogram_declarations;
          QCheck_alcotest.to_alcotest histogram_property1;
          QCheck_alcotest.to_alcotest qcheck_universal_histogram_linearizable;
          Alcotest.test_case "direct sequential" `Quick
            test_direct_histogram_sequential;
          Alcotest.test_case "direct rejects negative" `Quick
            test_direct_histogram_rejects_negative;
          QCheck_alcotest.to_alcotest qcheck_direct_histogram_concurrent_total;
        ] );
      ( "vector clock",
        [
          Alcotest.test_case "sequential" `Quick test_vector_clock_sequential;
          Alcotest.test_case "observe" `Quick test_vector_clock_observe;
          QCheck_alcotest.to_alcotest qcheck_vector_clock_causality;
          QCheck_alcotest.to_alcotest qcheck_vector_clock_ticks_comparable;
        ] );
    ]

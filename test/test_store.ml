(* Tests for the sharded, batching keyed store (PR 7, [Wfa.Store]).

   The store's claim is purely differential: sharding and batching are
   invisible.  For every schedule, the committed state at each key must
   equal the sequential specification folded over that key's operation
   subsequence, identically for batched and unbatched handles:

   - the derived batch relations of [Store.Batch_spec] satisfy Property 1
     over chunker-shaped (homogeneous) universes, and their declarations
     hold pointwise at random reachable states — so Theorem 26 applies to
     the shard object unchanged;
   - a mixed (non-homogeneous) batch universe violates Property 1 — the
     reason the chunking policy exists;
   - batched == unbatched == per-key spec fold, sequentially (full
     response transcripts), under DPOR over every schedule of small
     configurations, under random ways, and under qcheck-randomized
     scripts on sim (procs 1..3) and native (procs 1..4);
   - batching is an O(batch) win in graph entries and memoized local
     work (stats and journal annotations agree), with the Property 1
     fallback degenerating to singleton commits on hostile runs.

   Final states on the simulator are observed with a verifier process:
   the store is created for procs+1 sessions, the explored program runs
   only the [procs] workers, and each enumerated schedule is replayed
   into the (procs+1)-process program whose last pid does nothing but
   [query] every key — [Explore.replay_encoded] completes pids in order,
   so the verifier runs after all workers and its reads are the final
   committed state.  Worker scripts are commuting mutators, so that
   state is schedule-independent and equal to the spec fold. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module C = Spec.Counter_spec
module G = Spec.Gset_spec
module BC = Universal.Store.Batch_spec (Spec.Counter_spec)
module BG = Universal.Store.Batch_spec (Spec.Gset_spec)
module S_sim = Universal.Store.Make (Spec.Counter_spec) (Pram.Memory.Sim_v)
module S_direct = Universal.Store.Make (Spec.Counter_spec) (Pram.Memory.Direct_v)
module S_native = Universal.Store.Make (Spec.Counter_spec) (Pram.Native.Versioned)
module G_direct = Universal.Store.Make (Spec.Gset_spec) (Pram.Memory.Direct_v)

let ctx0 = Runtime.Ctx.make ~procs:1 ~pid:0 ()

(* --- Property 1 of the batch object ---------------------------------------- *)

let test_batch_spec_property1 () =
  (* Batches shaped like the flush-time chunker's output: homogeneous —
     all read-only, or pairwise-commuting mutators (plus the singleton
     chunks overwriters like Reset/Clear always land in). *)
  let counter_universe =
    [
      ("a", [ C.Inc 1; C.Inc 2; C.Dec 1 ]);
      ("a", [ C.Dec 2 ]);
      ("a", [ C.Read; C.Read ]);
      ("a", [ C.Reset 5 ]);
      ("b", [ C.Inc 3 ]);
      ("b", [ C.Read ]);
      ("c", [ C.Reset 0 ]);
    ]
  in
  (match
     Universal.Construction.check_property1
       (module BC : Spec.Object_spec.S
         with type operation = string * C.operation list)
       counter_universe
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "counter batch universe violates P1: %s" msg);
  let gset_universe =
    [
      ("x", [ G.Add 1; G.Add 2 ]);
      ("x", [ G.Members ]);
      ("x", [ G.Clear ]);
      ("y", [ G.Add 1 ]);
    ]
  in
  match
    Universal.Construction.check_property1
      (module BG : Spec.Object_spec.S
        with type operation = string * G.operation list)
      gset_universe
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "gset batch universe violates P1: %s" msg

let test_batch_spec_mixed_violates_p1 () =
  (* Why chunks are homogeneous: a mixed batch pins the read to its
     position inside the batch, so against another mutator batch at the
     same key the pair neither commutes (the read's response moves) nor
     overwrites in either direction. *)
  let universe = [ ("a", [ C.Inc 1; C.Read ]); ("a", [ C.Inc 2 ]) ] in
  match
    Universal.Construction.check_property1
      (module BC : Spec.Object_spec.S
        with type operation = string * C.operation list)
      universe
  with
  | Ok () -> Alcotest.fail "mixed batch should violate Property 1"
  | Error _ -> ()

(* The declared batch relations, checked pointwise at random reachable
   states (the same discharge the base specs get in test_spec). *)
module BCA = Spec.Object_spec.Algebra (BC)

let gen_homogeneous_batch rng =
  let key = [| "a"; "b" |].(Random.State.int rng 2) in
  match Random.State.int rng 4 with
  | 0 -> (key, List.init (1 + Random.State.int rng 3) (fun _ -> C.Read))
  | 1 -> (key, [ C.Reset (Random.State.int rng 5) ])
  | _ ->
      ( key,
        List.init
          (1 + Random.State.int rng 3)
          (fun _ ->
            if Random.State.bool rng then C.Inc (Random.State.int rng 4)
            else C.Dec (Random.State.int rng 4)) )

let qcheck_batch_declarations =
  QCheck.Test.make ~name:"batch relations hold pointwise" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xba7c |] in
      let state =
        BCA.reach
          (List.init (Random.State.int rng 4) (fun _ ->
               gen_homogeneous_batch rng))
      in
      let p = gen_homogeneous_batch rng and q = gen_homogeneous_batch rng in
      match BCA.check_declarations_at state p q with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* --- sequential differential (direct backend) ------------------------------ *)

(* Expected flush transcript: keys in first-submit order, each key's
   subsequence folded from the initial state.  Keys are independent in
   the store, so this is the unique sequential outcome. *)
let spec_fold_by_key ops =
  let rev_order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (key, op) ->
      let st, acc =
        match Hashtbl.find_opt tbl key with
        | Some v -> v
        | None ->
            rev_order := key :: !rev_order;
            (C.initial, [])
      in
      let st', r = C.apply st op in
      Hashtbl.replace tbl key (st', r :: acc))
    ops;
  List.rev_map
    (fun key -> (key, List.rev (snd (Hashtbl.find tbl key))))
    !rev_order

let mixed_script ~seed ~keys ~n =
  let rng = Random.State.make [| seed; 0xbeef |] in
  List.init n (fun _ ->
      let key = Workload.key_name (Random.State.int rng keys) in
      let op =
        match Random.State.int rng 10 with
        | 0 | 1 | 2 | 3 -> C.Inc (1 + Random.State.int rng 5)
        | 4 | 5 -> C.Dec (1 + Random.State.int rng 5)
        | 6 | 7 | 8 -> C.Read
        | _ -> C.Reset (Random.State.int rng 10)
      in
      (key, op))

let run_direct_sequential ~batching ops =
  let store = S_direct.create ~shards:4 ~procs:1 () in
  let h = S_direct.attach ~batching store ctx0 in
  List.iter (fun (key, op) -> S_direct.submit h ~key op) ops;
  let resps = S_direct.flush h in
  (resps, S_direct.stats h)

let test_sequential_differential () =
  List.iter
    (fun seed ->
      let ops = mixed_script ~seed ~keys:3 ~n:60 in
      let expected = spec_fold_by_key ops in
      let batched, bstats =
        run_direct_sequential ~batching:(Universal.Store.Batched 8) ops
      in
      let unbatched, ustats =
        run_direct_sequential ~batching:Universal.Store.Unbatched ops
      in
      check_bool "batched = spec fold" true (batched = expected);
      check_bool "unbatched = spec fold" true (unbatched = expected);
      check_int "unbatched entries = ops" 60 ustats.S_direct.entries;
      check_int "ops accounted" 60 bstats.S_direct.ops;
      check_bool "batching shrinks entries" true
        (bstats.S_direct.entries < ustats.S_direct.entries))
    [ 1; 2; 3 ]

(* --- chunking, fallbacks, and the API guards -------------------------------- *)

let test_chunking_fallbacks () =
  let store = S_direct.create ~shards:2 ~procs:1 () in
  let h = S_direct.attach ~batching:(Universal.Store.Batched 16) store ctx0 in
  List.iter
    (fun op -> S_direct.submit h ~key:"k" op)
    [ C.Inc 1; C.Inc 2; C.Reset 7; C.Dec 3; C.Read ];
  check_int "pending before flush" 5 (S_direct.pending_ops h);
  let resps = S_direct.flush h in
  check_bool "responses in submission order" true
    (resps = [ ("k", [ C.Unit; C.Unit; C.Unit; C.Unit; C.Value 4 ]) ]);
  let st = S_direct.stats h in
  (* chunks: [Inc;Inc] | [Reset] | [Dec] | [Read] — Reset breaks the
     commuting run twice, the trailing Read breaks the mutator kind *)
  check_int "entries" 4 st.S_direct.entries;
  check_int "batched ops" 2 st.S_direct.batched_ops;
  check_int "largest batch" 2 st.S_direct.largest_batch;
  check_int "fallbacks" 3 st.S_direct.fallbacks;
  check_int "pending drained" 0 (S_direct.pending_ops h);
  check_bool "query sees the committed state" true
    (S_direct.query h ~key:"k" C.Read = C.Value 4)

let test_api_guards () =
  let store = S_direct.create ~shards:3 ~procs:1 () in
  (try
     ignore (S_direct.attach ~batching:(Universal.Store.Batched 1) store ctx0);
     Alcotest.fail "Batched 1 should be rejected"
   with Invalid_argument _ -> ());
  let h = Runtime.Ctx.attach ctx0 (S_direct.attach store) in
  check_bool "execute commits a singleton" true
    (S_direct.execute h ~key:"a" (C.Inc 2) = C.Unit);
  S_direct.submit h ~key:"a" (C.Inc 1);
  (try
     ignore (S_direct.execute h ~key:"a" C.Read);
     Alcotest.fail "execute with pending operations should be rejected"
   with Invalid_argument _ -> ());
  (try
     ignore (S_direct.query h ~key:"a" (C.Inc 1));
     Alcotest.fail "query of a mutator should be rejected"
   with Invalid_argument _ -> ());
  ignore (S_direct.flush h);
  check_bool "query after flush" true
    (S_direct.query h ~key:"a" C.Read = C.Value 3);
  check_int "shard placement is stable" (S_direct.shard_of store "a")
    (S_direct.shard_of store "a");
  List.iter
    (fun key ->
      let s = S_direct.shard_of store key in
      check_bool "shard in range" true (s >= 0 && s < S_direct.shards store))
    [ "a"; "zz"; Workload.key_name 17 ]

let test_gset_store () =
  let store = G_direct.create ~shards:2 ~procs:1 () in
  let h = G_direct.attach ~batching:(Universal.Store.Batched 8) store ctx0 in
  List.iter
    (fun (k, op) -> G_direct.submit h ~key:k op)
    [
      ("s", G.Add 3);
      ("s", G.Add 1);
      ("t", G.Add 9);
      ("s", G.Members);
      ("s", G.Clear);
      ("s", G.Add 2);
    ];
  let resps = G_direct.flush h in
  check_bool "gset transcript" true
    (resps
    = [
        ("s", [ G.Unit; G.Unit; G.Elements [ 1; 3 ]; G.Unit; G.Unit ]);
        ("t", [ G.Unit ]);
      ]);
  check_bool "members after clear+add" true
    (G_direct.query h ~key:"s" G.Members = G.Elements [ 2 ]);
  check_bool "other key untouched by clear" true
    (G_direct.query h ~key:"t" G.Members = G.Elements [ 9 ])

(* --- exhaustive differential on the simulator ------------------------------- *)

let explore_keys = [ "a"; "b" ]

let explore_script = function
  | 0 -> [ ("a", C.Inc 1); ("b", C.Dec 2) ]
  | _ -> [ ("a", C.Inc 3) ]

let fold_value script procs key =
  List.fold_left
    (fun acc pid ->
      List.fold_left
        (fun acc (k, op) ->
          if k <> key then acc
          else match op with C.Inc n -> acc + n | C.Dec n -> acc - n | _ -> acc)
        acc (script pid))
    0
    (List.init procs Fun.id)

let explore_expected =
  List.map
    (fun key -> (key, C.Value (fold_value explore_script 2 key)))
    explore_keys

(* The verifier-pid program: [procs] workers plus one querying process.
   The same setup serves the worker-only exploration driver (procs) and
   the replay driver (procs + 1). *)
let store_setup ~batching ~procs ~script ~keys () =
  let store = S_sim.create ~shards:2 ~procs:(procs + 1) () in
  let ctxs = Runtime.Ctx.family ~procs:(procs + 1) () in
  fun pid ->
    if pid < procs then begin
      let h = S_sim.attach ~batching store ctxs.(pid) in
      List.iter (fun (key, op) -> S_sim.submit h ~key op) (script pid);
      ignore (S_sim.flush h);
      []
    end
    else
      let h = S_sim.attach store ctxs.(procs) in
      List.map (fun key -> (key, S_sim.query h ~key C.Read)) keys

let verifier_sees ~batching ~procs ~script ~keys ~expected sched =
  let d, _ =
    Pram.Explore.replay_encoded ~procs:(procs + 1)
      (store_setup ~batching ~procs ~script ~keys)
      sched
  in
  Pram.Driver.result d procs = Some expected

(* One operation per worker, same key: the full DPOR closure (~8.6k
   classes) of two concurrent commits racing on one shard, checked with
   a verifier replay per class. *)
let small_script = function
  | 0 -> [ ("a", C.Inc 1) ]
  | _ -> [ ("a", C.Inc 3) ]

let small_expected = [ ("a", C.Value (fold_value small_script 2 "a")) ]

let test_explore_differential () =
  List.iter
    (fun batching ->
      let setup =
        store_setup ~batching ~procs:2 ~script:small_script ~keys:[ "a" ]
      in
      let outcome =
        Pram.Explore.exhaustive ~mode:Pram.Explore.Dpor ~procs:2 setup
          (fun _d sched ->
            verifier_sees ~batching ~procs:2 ~script:small_script
              ~keys:[ "a" ] ~expected:small_expected sched)
      in
      check_bool "every DPOR schedule folds to the spec" true
        (Pram.Explore.ok outcome);
      check_bool "non-trivial schedule count" true
        (outcome.Pram.Explore.explored > 1))
    [ Universal.Store.Batched 4; Universal.Store.Unbatched ]

let test_explore_differential_sampled () =
  (* The richer two-key program (a real multi-op chunk on the batched
     side) once had ~330k DPOR classes; the adaptive scan's bounded
     retry collapses most escalation branches, so the closure now
     completes well inside the budget (kept as a safety net).  Demand
     zero disagreements across all of it. *)
  List.iter
    (fun batching ->
      let setup =
        store_setup ~batching ~procs:2 ~script:explore_script
          ~keys:explore_keys
      in
      let outcome =
        Pram.Explore.exhaustive ~mode:Pram.Explore.Dpor ~max_schedules:1_500
          ~procs:2 setup
          (fun _d sched ->
            verifier_sees ~batching ~procs:2 ~script:explore_script
              ~keys:explore_keys ~expected:explore_expected sched)
      in
      check_bool "every DPOR schedule folds to the spec" true
        (Pram.Explore.ok outcome);
      check_bool "non-trivial schedule count" true
        (outcome.Pram.Explore.explored > 10))
    [ Universal.Store.Batched 4; Universal.Store.Unbatched ]

let test_random_ways_differential () =
  List.iter
    (fun batching ->
      let setup =
        store_setup ~batching ~procs:2 ~script:explore_script
          ~keys:explore_keys
      in
      let outcome =
        Pram.Explore.search
          ~way:(Pram.Explore.Way.Uniform { seed = 2026; count = 40 })
          ~jobs:1 ~procs:2
          (fun () ->
            Pram.Explore.instance
              ~check:(fun _d sched ->
                verifier_sees ~batching ~procs:2 ~script:explore_script
                  ~keys:explore_keys ~expected:explore_expected sched)
              setup)
      in
      check_bool "random ways: no failures" true
        (outcome.Pram.Explore.failures = []);
      check_int "random ways: all samples ran" 40
        outcome.Pram.Explore.coverage.Pram.Explore.cov_sampled)
    [ Universal.Store.Batched 4; Universal.Store.Unbatched ]

(* --- randomized differential: sim (procs 1..3) ------------------------------ *)

let qcheck_store_sim =
  QCheck.Test.make ~name:"store: sim random schedules = spec fold" ~count:40
    QCheck.(triple (int_bound 1_000_000) (int_range 1 3) (int_range 2 6))
    (fun (seed, procs, max_batch) ->
      let keys = 3 in
      let script =
        Workload.keyed_counter_script ~seed ~keys ~theta:0.9
          ~read_fraction:0.0 ~ops_per_proc:4
      in
      let key_names = List.init keys Workload.key_name in
      let expected =
        List.map
          (fun key -> (key, C.Value (fold_value script procs key)))
          key_names
      in
      let run batching =
        let setup = store_setup ~batching ~procs ~script ~keys:key_names in
        let d = Pram.Driver.create ~procs setup in
        Pram.Scheduler.run ~max_steps:5_000_000
          (Pram.Scheduler.random ~seed ())
          d;
        verifier_sees ~batching ~procs ~script ~keys:key_names ~expected
          (Pram.Driver.schedule d)
      in
      run (Universal.Store.Batched max_batch)
      && run Universal.Store.Unbatched)

(* --- randomized differential: native (procs 1..4) --------------------------- *)

let qcheck_store_native =
  QCheck.Test.make ~name:"store: native parallel = spec fold" ~count:15
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, procs) ->
      let keys = 3 in
      let script =
        Workload.keyed_counter_script ~seed ~keys ~theta:0.5
          ~read_fraction:0.0 ~ops_per_proc:6
      in
      let key_names = List.init keys Workload.key_name in
      let expected =
        List.map
          (fun key -> (key, C.Value (fold_value script procs key)))
          key_names
      in
      let run batching =
        let store = S_native.create ~shards:2 ~procs:(procs + 1) () in
        let ctxs = Runtime.Ctx.family ~procs:(procs + 1) () in
        ignore
          (Pram.Native.run_parallel ~procs (fun pid ->
               let h = S_native.attach ~batching store ctxs.(pid) in
               List.iter
                 (fun (key, op) -> S_native.submit h ~key op)
                 (script pid);
               ignore (S_native.flush h)));
        (* the joining domain reads after every worker completed *)
        let h = S_native.attach store ctxs.(procs) in
        List.map (fun key -> (key, S_native.query h ~key C.Read)) key_names
        = expected
      in
      run (Universal.Store.Batched 4) && run Universal.Store.Unbatched)

(* --- the O(batch) regression ------------------------------------------------ *)

let publishes_in_journal journal =
  List.fold_left
    (fun acc (e : Tracing.event) ->
      match e.Tracing.ev with
      | Tracing.Annotate "publish" -> acc + 1
      | _ -> acc)
    0
    (Tracing.Journal.events journal)

(* Round-robin at flush granularity across [procs] handles on one shard:
   every flush's entry is later merged by each PEER's memo, so total
   replays track the number of published ENTRIES — which batching
   divides by the batch size.  (A solo handle never replays at all: its
   own entries are absorbed at publish time, which is why this test
   needs contention to expose the O(batch) win in local work.) *)
let test_obatch_regression () =
  let procs = 3 and rounds = 6 and batch = 8 in
  let total = procs * rounds * batch in
  let run batching =
    let journal = Tracing.Journal.create ~procs () in
    let sink = Runtime.Sink.make ~journal () in
    let store = S_direct.create ~shards:1 ~procs () in
    let handles =
      Array.init procs (fun pid ->
          S_direct.attach ~batching store (Runtime.Ctx.make ~sink ~procs ~pid ()))
    in
    for _round = 1 to rounds do
      Array.iter
        (fun h ->
          for _ = 1 to batch do
            S_direct.submit h ~key:"hot" (C.Inc 1)
          done;
          ignore (S_direct.flush h))
        handles
    done;
    check_bool "final value" true
      (S_direct.query handles.(0) ~key:"hot" C.Read = C.Value total);
    let sum f = Array.fold_left (fun acc h -> acc + f (S_direct.stats h)) 0 handles in
    let entries = sum (fun s -> s.S_direct.entries) in
    let stats0 = S_direct.stats handles.(0) in
    ( entries,
      sum (fun s -> s.S_direct.batched_ops),
      stats0.S_direct.largest_batch,
      sum (fun s -> s.S_direct.fallbacks),
      sum (fun s -> s.S_direct.spec_replays),
      publishes_in_journal journal )
  in
  let b_entries, b_bops, b_largest, b_fb, b_replays, b_pub =
    run (Universal.Store.Batched batch)
  in
  let u_entries, _, _, u_fb, u_replays, u_pub = run Universal.Store.Unbatched in
  check_int "batched entries = flushes" (procs * rounds) b_entries;
  check_int "unbatched entries = ops" total u_entries;
  check_int "batched publishes (journal view)" (procs * rounds) b_pub;
  check_int "unbatched publishes (journal view)" total u_pub;
  check_int "largest batch = cap" batch b_largest;
  check_int "every op rode a batch" total b_bops;
  check_int "no fallbacks on a commuting run" 0 b_fb;
  check_int "unbatched handles never count fallbacks" 0 u_fb;
  (* each published entry is merged at most once by each peer memo *)
  check_bool "batched replays are O(entries)" true
    (b_replays <= procs * b_entries);
  check_bool "memoized local work shrinks with batching" true
    (b_replays * 4 < u_replays)

(* --- suite ------------------------------------------------------------------- *)

let suite =
  [
    Alcotest.test_case "batch spec satisfies Property 1" `Quick
      test_batch_spec_property1;
    Alcotest.test_case "mixed batches violate Property 1" `Quick
      test_batch_spec_mixed_violates_p1;
    QCheck_alcotest.to_alcotest qcheck_batch_declarations;
    Alcotest.test_case "sequential differential" `Quick
      test_sequential_differential;
    Alcotest.test_case "chunking and fallbacks" `Quick test_chunking_fallbacks;
    Alcotest.test_case "api guards" `Quick test_api_guards;
    Alcotest.test_case "gset store" `Quick test_gset_store;
    Alcotest.test_case "DPOR differential (procs 2 + verifier)" `Quick
      test_explore_differential;
    Alcotest.test_case "DPOR differential, sampled two-key" `Quick
      test_explore_differential_sampled;
    Alcotest.test_case "random ways differential" `Quick
      test_random_ways_differential;
    QCheck_alcotest.to_alcotest qcheck_store_sim;
    QCheck_alcotest.to_alcotest qcheck_store_native;
    Alcotest.test_case "O(batch) regression" `Quick test_obatch_regression;
  ]

let () = Alcotest.run "store" [ ("store", suite) ]

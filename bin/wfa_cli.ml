(* The wfa command-line interface.

     dune exec bin/wfa_cli.exe -- <command> ...

   Commands:
     experiment [ID] [--quick]   run one experiment table (or all)
     agree --inputs 1,2,3        run approximate agreement on given inputs
     adversary -k K             attack the Figure 2 algorithm (Lemma 6)
     counter --procs N --ops M   torture a wait-free counter on domains
     explore                     model-check snapshot implementations
     lincheck-demo               show the checker catching a naive collect
     bench --json [--quick]      run the JSON bench pipeline (BENCH_PR2.json)
     bench-validate FILE         schema-check a bench JSON file

   Exit codes are meaningful on every subcommand — non-zero whenever the
   run found a violation of a property it was checking (lost updates,
   agreement out of range, a linearizability violation of a correct
   object, a checker that misses a known-broken object, a malformed
   bench file) — so CI can gate on them. *)

open Cmdliner

(* --- experiment ----------------------------------------------------------- *)

let experiment_cmd =
  let id =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id (E1..E9); omit to run all.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps, faster run.")
  in
  let run id quick =
    match id with
    | None ->
        Experiments.run_all ~quick ();
        `Ok ()
    | Some id -> (
        match Experiments.find ~quick id with
        | None -> `Error (false, Printf.sprintf "unknown experiment %S" id)
        | Some e ->
            Printf.printf "### %s — %s\n" e.Experiments.id e.paper_source;
            List.iter Experiments.Table.print (e.run ());
            `Ok ())
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce a paper claim as a table.")
    Term.(ret (const run $ id $ quick))

(* --- agree ----------------------------------------------------------------- *)

let agree_cmd =
  let inputs =
    Arg.(
      value
      & opt (list float) [ 0.0; 1.0 ]
      & info [ "inputs" ] ~docv:"X,Y,..."
          ~doc:"One input per process (process count = list length).")
  in
  let epsilon =
    Arg.(value & opt float 0.01 & info [ "epsilon" ] ~doc:"Agreement slack.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scheduler seed.")
  in
  let run inputs epsilon seed =
    let inputs = Array.of_list inputs in
    let procs = Array.length inputs in
    if procs < 1 then `Error (false, "need at least one input")
    else begin
      let module AA = Agreement.Approx_agreement.Make (Pram.Memory.Sim) in
      let program () =
        let t = AA.create ~procs ~epsilon in
        fun pid ->
          AA.input t ~pid inputs.(pid);
          AA.output t ~pid
      in
      let d = Pram.Driver.create ~procs program in
      Pram.Scheduler.run ~max_steps:10_000_000
        (Pram.Scheduler.random ~seed ())
        d;
      for p = 0 to procs - 1 do
        if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
      done;
      let outputs =
        List.init procs (fun p ->
            match Pram.Driver.result d p with
            | Some v ->
                Printf.printf "process %d: input %g -> output %.9g (%d steps)\n"
                  p inputs.(p) v (Pram.Driver.steps d p);
                Some v
            | None ->
                Printf.printf "process %d: no result\n" p;
                None)
      in
      (* gate on the Figure 2 guarantees: everyone terminates (wait-free),
         outputs within the input range (validity), spread <= epsilon
         (agreement) *)
      match List.filter_map Fun.id outputs with
      | vs when List.length vs <> procs -> `Error (false, "a process failed to terminate")
      | vs ->
          let lo_in = Array.fold_left Float.min infinity inputs
          and hi_in = Array.fold_left Float.max neg_infinity inputs in
          let lo = List.fold_left Float.min infinity vs
          and hi = List.fold_left Float.max neg_infinity vs in
          if lo < lo_in || hi > hi_in then
            `Error (false, "validity violated: an output is outside the input range")
          else if hi -. lo > epsilon then
            `Error
              ( false,
                Printf.sprintf "agreement violated: spread %g > epsilon %g"
                  (hi -. lo) epsilon )
          else `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "agree"
       ~doc:"Run wait-free approximate agreement (Figure 2) on inputs.")
    Term.(ret (const run $ inputs $ epsilon $ seed))

(* --- adversary ------------------------------------------------------------- *)

let adversary_cmd =
  let k =
    Arg.(value & opt int 4 & info [ "k" ] ~doc:"Hierarchy level: eps = 3^-k.")
  in
  let run k =
    let row = Agreement.Hierarchy.theorem7_row k in
    Printf.printf
      "k=%d  eps=3^-%d\n\
       Lemma 6 lower bound : %d steps\n\
       adversary forced    : %d steps\n\
       Theorem 5 bound     : %.1f steps\n\
       agreement preserved : %b\n"
      k k row.Agreement.Hierarchy.lower_bound row.Agreement.Hierarchy.forced
      row.Agreement.Hierarchy.upper_bound row.Agreement.Hierarchy.agreement_ok;
    if not row.Agreement.Hierarchy.agreement_ok then
      `Error (false, "adversary broke agreement (implementation bug)")
    else if row.Agreement.Hierarchy.forced < row.Agreement.Hierarchy.lower_bound
    then `Error (false, "adversary forced fewer steps than the Lemma 6 bound")
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:
         "Attack the Figure 2 algorithm with the replay adversary of Lemma 6.")
    Term.(ret (const run $ k))

(* --- counter ---------------------------------------------------------------- *)

let counter_cmd =
  let procs =
    Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Domains to spawn.")
  in
  let ops =
    Arg.(value & opt int 10_000 & info [ "ops" ] ~doc:"Increments per domain.")
  in
  let run procs ops =
    let module C = Universal.Direct.Counter (Pram.Native.Mem) in
    let counter = C.create ~procs in
    let _ =
      Pram.Native.run_parallel ~procs (fun pid ->
          for _ = 1 to ops do
            C.inc counter ~pid 1
          done)
    in
    let final = C.read counter ~pid:0 in
    Printf.printf "%d domains x %d increments -> %d (expected %d): %s\n" procs
      ops final (procs * ops)
      (if final = procs * ops then "OK" else "LOST UPDATES");
    if final = procs * ops then `Ok () else `Error (false, "counter lost updates")
  in
  Cmd.v
    (Cmd.info "counter"
       ~doc:"Torture the wait-free counter on real domains.")
    Term.(ret (const run $ procs $ ops))

(* --- explore ------------------------------------------------------------------ *)

let explore_cmd =
  let naive_flag =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:
            "Enumerate every maximal schedule (the default; sound for \
             linearizability).  Mutually exclusive with $(b,--dpor).")
  in
  let dpor_flag =
    Arg.(
      value & flag
      & info [ "dpor" ]
          ~doc:
            "Use dynamic partial-order reduction: orders of magnitude \
             fewer schedules, but violations living purely in the \
             real-time order of independent accesses (such as the naive \
             collect's) can be missed — states are preserved under \
             commuting, event order is not.")
  in
  let shrink_flag =
    Arg.(
      value & opt bool true
      & info [ "shrink" ] ~docv:"BOOL"
          ~doc:
            "Delta-debug a failing schedule to a locally minimal \
             counterexample before printing it.")
  in
  let max_schedules =
    Arg.(
      value & opt int 2_000_000
      & info [ "max-schedules" ] ~docv:"N"
          ~doc:"Stop the search after exploring N schedules.")
  in
  let run naive dpor shrink max_schedules =
    if naive && dpor then `Error (false, "--naive and --dpor are exclusive")
    else begin
      let mode =
        if dpor then Pram.Explore.Dpor else Pram.Explore.Naive
      in
      let module V = Snapshot.Slot_value.Int in
      let module Arr = Snapshot.Snapshot_array.Make (V) (Pram.Memory.Sim) in
      let module Naive_c = Snapshot.Collect.Make (V) (Pram.Memory.Sim) in
      let module Spec2 =
        Snapshot.Array_spec.Make
          (V)
          (struct
            let procs = 2
          end)
      in
      let module Spec3 =
        Snapshot.Array_spec.Make
          (V)
          (struct
            let procs = 3
          end)
      in
      let module Check2 = Lincheck.Make (Spec2) in
      let module Check3 = Lincheck.Make (Spec3) in
      (* the atomic snapshot: updater vs snapshotter, every interleaving
         (or one representative of each equivalence class) is clean *)
      let recorder2 = ref (Spec.History.Recorder.create ()) in
      let atomic_program () =
        recorder2 := Spec.History.Recorder.create ();
        let t = Arr.create ~procs:2 in
        fun pid ->
          if pid = 0 then
            ignore
              (Spec.History.Recorder.record !recorder2 ~pid (`Update (0, 10))
                 (fun () ->
                   Arr.update t ~pid 10;
                   `Unit))
          else
            ignore
              (Spec.History.Recorder.record !recorder2 ~pid `Snapshot
                 (fun () -> `View (Arr.snapshot t ~pid)))
      in
      print_endline
        "atomic scan, updater vs snapshotter (2 processes, correct):";
      let atomic_report =
        Check2.explore_check ~mode ~shrink ~max_schedules ~procs:2
          ~recorder:recorder2 atomic_program
      in
      Format.printf "  @[<v>%a@]@." Pram.Explore.pp_report atomic_report;
      (* the naive collect: two updaters vs a snapshotter is NOT
         linearizable; the explorer finds, shrinks and prints a
         counterexample schedule with its history *)
      let recorder3 = ref (Spec.History.Recorder.create ()) in
      let collect_program () =
        recorder3 := Spec.History.Recorder.create ();
        let t = Naive_c.create ~procs:3 in
        fun pid ->
          if pid < 2 then
            ignore
              (Spec.History.Recorder.record !recorder3 ~pid
                 (`Update (pid, pid + 10)) (fun () ->
                   Naive_c.update t ~pid (pid + 10);
                   `Unit))
          else
            ignore
              (Spec.History.Recorder.record !recorder3 ~pid `Snapshot
                 (fun () -> `View (Naive_c.snapshot t ~pid)))
      in
      print_endline "naive collect, 2 updaters vs snapshotter (3 processes, buggy):";
      let collect_report =
        Check3.explore_check ~mode ~shrink ~max_schedules ~procs:3
          ~recorder:recorder3 collect_program
      in
      Format.printf "  @[<v>%a@]@." Pram.Explore.pp_report collect_report;
      (* exit non-zero on any unexpected verdict: the correct object must
         pass its search, and the search must catch the known-broken
         collect — either failure means a real bug, in the algorithm or
         in the explorer.  Exception: the collect's violation lives
         purely in the real-time order of independent accesses, which
         DPOR is documented to miss (see --dpor's help), so a clean DPOR
         collect report is a warning, not a failure. *)
      if not (Pram.Explore.report_ok atomic_report) then
        `Error
          ( false,
            "linearizability violation (or truncated search) on the atomic \
             snapshot" )
      else if Pram.Explore.report_ok collect_report then
        if mode = Pram.Explore.Dpor then begin
          print_endline
            "note: DPOR missed the collect's real-time-order violation (a \
             documented limitation); rerun with --naive for the ground \
             truth";
          `Ok ()
        end
        else
          `Error
            (false, "the explorer missed the naive collect's known violation")
      else `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Model-check the atomic snapshot (clean) and the naive collect \
          (broken) over every schedule; failing schedules are shrunk to \
          minimal counterexamples.  $(b,--dpor) prunes the search to one \
          representative per Mazurkiewicz trace.")
    Term.(ret (const run $ naive_flag $ dpor_flag $ shrink_flag $ max_schedules))

(* --- lincheck-demo ----------------------------------------------------------- *)

let lincheck_demo_cmd =
  let run () =
    let module V = Snapshot.Slot_value.Int in
    let module Naive = Snapshot.Collect.Make (V) (Pram.Memory.Sim) in
    let module Spec3 =
      Snapshot.Array_spec.Make
        (V)
        (struct
          let procs = 3
        end)
    in
    let module Check = Lincheck.Make (Spec3) in
    let rec search seed =
      if seed > 5000 then None
      else begin
        let recorder = Spec.History.Recorder.create () in
        let program () =
          let t = Naive.create ~procs:3 in
          fun pid ->
            ignore
              (Spec.History.Recorder.record recorder ~pid
                 (`Update (pid, pid + 10)) (fun () ->
                   Naive.update t ~pid (pid + 10);
                   `Unit));
            ignore
              (Spec.History.Recorder.record recorder ~pid `Snapshot (fun () ->
                   `View (Naive.snapshot t ~pid)))
        in
        let d = Pram.Driver.create ~procs:3 program in
        Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
        let events = Spec.History.Recorder.events recorder in
        if Check.is_linearizable events then search (seed + 1)
        else Some (seed, events)
      end
    in
    match search 0 with
    | Some (seed, events) ->
        Printf.printf
          "naive collect: non-linearizable history found at scheduler seed %d:\n"
          seed;
        Format.printf "%a@."
          (Spec.History.pp Spec3.pp_operation Spec3.pp_response)
          events;
        `Ok ()
    | None ->
        `Error
          ( false,
            "no violation found in 5000 seeds: the checker or the schedules \
             regressed" )
  in
  Cmd.v
    (Cmd.info "lincheck-demo"
       ~doc:
         "Find and print a non-linearizable history of the naive collect.")
    Term.(ret (const run $ const ()))

(* --- bench / bench-validate -------------------------------------------------- *)

let bench_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Write the rows as JSON to $(b,--out) (the only supported \
             output; the flag exists for symmetry with bench/main.exe).")
  in
  let out =
    Arg.(
      value
      & opt string Experiments.Bench_json.default_path
      & info [ "out" ] ~docv:"FILE" ~doc:"Output path for the JSON rows.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps, faster run.")
  in
  let run json out quick =
    ignore json;
    let rows = Experiments.Bench_json.run ~path:out ~quick () in
    Printf.printf "wrote %d rows to %s\n" (List.length rows) out;
    match Experiments.Bench_json.validate_file ~path:out with
    | Ok _ -> `Ok ()
    | Error errs ->
        `Error (false, "schema check failed: " ^ String.concat "; " errs)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the JSON bench pipeline: simulator step counts, native \
          multi-domain throughput (procs 1,2,4,8), and direct timing — \
          the BENCH_PR2.json rows.")
    Term.(ret (const run $ json $ out $ quick))

let bench_validate_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Bench JSON file to validate.")
  in
  let run file =
    match Experiments.Bench_json.validate_file ~path:file with
    | Ok n ->
        Printf.printf "%s: ok (%d rows)\n" file n;
        `Ok ()
    | Error errs ->
        List.iter (Printf.eprintf "%s: %s\n" file) errs;
        `Error (false, Printf.sprintf "%d schema error(s)" (List.length errs))
  in
  Cmd.v
    (Cmd.info "bench-validate"
       ~doc:
         "Validate a bench JSON file: syntax, the 6-field row schema, \
          scan rows against Scan.cost_formula, procs coverage, and zero \
          lost updates.  Non-zero exit on any failure (the CI gate).")
    Term.(ret (const run $ file))

let () =
  let default =
    Term.(ret (const (`Help (`Pager, None))))
  in
  let info =
    Cmd.info "wfa" ~version:"1.0.0"
      ~doc:"Wait-free data structures in the asynchronous PRAM model."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            experiment_cmd;
            agree_cmd;
            adversary_cmd;
            counter_cmd;
            explore_cmd;
            lincheck_demo_cmd;
            bench_cmd;
            bench_validate_cmd;
          ]))

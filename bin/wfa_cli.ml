(* The wfa command-line interface.

     dune exec bin/wfa_cli.exe -- <command> ...

   Commands:
     experiment [ID] [--quick]   run one experiment table (or all)
     agree --inputs 1,2,3        run approximate agreement on given inputs
     adversary -k K             attack the Figure 2 algorithm (Lemma 6)
     counter --procs N --ops M   torture a wait-free counter on domains
     explore                     model-check snapshot implementations
     trace                       run a workload under the structured tracer
     lincheck-demo               show the checker catching a naive collect
     top [--once]                live per-shard telemetry view of the store
     bench --json [--quick]      run the JSON bench pipeline (BENCH_PR10.json)
     bench-validate FILE         schema-check a bench JSON file

   Exit codes are meaningful on every subcommand — non-zero whenever the
   run found a violation of a property it was checking (lost updates,
   agreement out of range, a linearizability violation of a correct
   object, a checker that misses a known-broken object, a malformed
   bench file) — so CI can gate on them. *)

open Cmdliner

(* --- experiment ----------------------------------------------------------- *)

let experiment_cmd =
  let id =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id (E1..E9); omit to run all.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps, faster run.")
  in
  let run id quick =
    match id with
    | None ->
        Experiments.run_all ~quick ();
        `Ok ()
    | Some id -> (
        match Experiments.find ~quick id with
        | None -> `Error (false, Printf.sprintf "unknown experiment %S" id)
        | Some e ->
            Printf.printf "### %s — %s\n" e.Experiments.id e.paper_source;
            List.iter Experiments.Table.print (e.run ());
            `Ok ())
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce a paper claim as a table.")
    Term.(ret (const run $ id $ quick))

(* --- agree ----------------------------------------------------------------- *)

let agree_cmd =
  let inputs =
    Arg.(
      value
      & opt (list float) [ 0.0; 1.0 ]
      & info [ "inputs" ] ~docv:"X,Y,..."
          ~doc:"One input per process (process count = list length).")
  in
  let epsilon =
    Arg.(value & opt float 0.01 & info [ "epsilon" ] ~doc:"Agreement slack.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scheduler seed.")
  in
  let run inputs epsilon seed =
    let inputs = Array.of_list inputs in
    let procs = Array.length inputs in
    if procs < 1 then `Error (false, "need at least one input")
    else begin
      let module AA = Agreement.Approx_agreement.Make (Pram.Memory.Sim) in
      let program () =
        let t = AA.create ~procs ~epsilon in
        fun pid ->
          let h = AA.attach t (Runtime.Ctx.make ~procs ~pid ()) in
          AA.input h inputs.(pid);
          AA.output h
      in
      let d = Pram.Driver.create ~procs program in
      Pram.Scheduler.run ~max_steps:10_000_000
        (Pram.Scheduler.random ~seed ())
        d;
      for p = 0 to procs - 1 do
        if Pram.Driver.runnable d p then ignore (Pram.Driver.run_solo d p)
      done;
      let outputs =
        List.init procs (fun p ->
            match Pram.Driver.result d p with
            | Some v ->
                Printf.printf "process %d: input %g -> output %.9g (%d steps)\n"
                  p inputs.(p) v (Pram.Driver.steps d p);
                Some v
            | None ->
                Printf.printf "process %d: no result\n" p;
                None)
      in
      (* gate on the Figure 2 guarantees: everyone terminates (wait-free),
         outputs within the input range (validity), spread <= epsilon
         (agreement) *)
      match List.filter_map Fun.id outputs with
      | vs when List.length vs <> procs -> `Error (false, "a process failed to terminate")
      | vs ->
          let lo_in = Array.fold_left Float.min infinity inputs
          and hi_in = Array.fold_left Float.max neg_infinity inputs in
          let lo = List.fold_left Float.min infinity vs
          and hi = List.fold_left Float.max neg_infinity vs in
          if lo < lo_in || hi > hi_in then
            `Error (false, "validity violated: an output is outside the input range")
          else if hi -. lo > epsilon then
            `Error
              ( false,
                Printf.sprintf "agreement violated: spread %g > epsilon %g"
                  (hi -. lo) epsilon )
          else `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "agree"
       ~doc:"Run wait-free approximate agreement (Figure 2) on inputs.")
    Term.(ret (const run $ inputs $ epsilon $ seed))

(* --- adversary ------------------------------------------------------------- *)

let adversary_cmd =
  let k =
    Arg.(value & opt int 4 & info [ "k" ] ~doc:"Hierarchy level: eps = 3^-k.")
  in
  let run k =
    let row = Agreement.Hierarchy.theorem7_row k in
    Printf.printf
      "k=%d  eps=3^-%d\n\
       Lemma 6 lower bound : %d steps\n\
       adversary forced    : %d steps\n\
       Theorem 5 bound     : %.1f steps\n\
       agreement preserved : %b\n"
      k k row.Agreement.Hierarchy.lower_bound row.Agreement.Hierarchy.forced
      row.Agreement.Hierarchy.upper_bound row.Agreement.Hierarchy.agreement_ok;
    if not row.Agreement.Hierarchy.agreement_ok then
      `Error (false, "adversary broke agreement (implementation bug)")
    else if row.Agreement.Hierarchy.forced < row.Agreement.Hierarchy.lower_bound
    then `Error (false, "adversary forced fewer steps than the Lemma 6 bound")
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:
         "Attack the Figure 2 algorithm with the replay adversary of Lemma 6.")
    Term.(ret (const run $ k))

(* --- counter ---------------------------------------------------------------- *)

let backend_enum =
  List.map (fun k -> (Runtime.Backend.name k, k)) Runtime.Backend.all

let counter_cmd =
  let procs =
    Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Domains to spawn.")
  in
  let ops =
    Arg.(value & opt int 10_000 & info [ "ops" ] ~doc:"Increments per domain.")
  in
  let backend =
    Arg.(
      value
      & opt (enum backend_enum) Runtime.Backend.Native
      & info [ "backend" ] ~docv:"B"
          ~doc:"Backend: $(b,native) real domains, $(b,sim) deterministic \
                simulator, $(b,direct) sequential.")
  in
  let run procs ops backend =
    (* The same functorized program runs on whichever backend the
       registry hands us; only the memory module differs. *)
    let final_read = ref (fun () -> 0) in
    let program (module M : Pram.Memory.S) () =
      let module MV = Pram.Memory.Versioned (M) in
      let module C = Universal.Direct.Counter (MV) in
      let counter = C.create ~procs in
      (final_read :=
         fun () ->
           C.read (C.attach counter (Runtime.Ctx.make ~procs ~pid:0 ())));
      fun pid ->
        let h = C.attach counter (Runtime.Ctx.make ~procs ~pid ()) in
        for _ = 1 to ops do
          C.inc h 1
        done
    in
    let _ = Runtime.Backend.run backend ~procs program in
    let final = !final_read () in
    Printf.printf "%d processes (%s) x %d increments -> %d (expected %d): %s\n"
      procs
      (Runtime.Backend.name backend)
      ops final (procs * ops)
      (if final = procs * ops then "OK" else "LOST UPDATES");
    if final = procs * ops then `Ok () else `Error (false, "counter lost updates")
  in
  Cmd.v
    (Cmd.info "counter"
       ~doc:"Torture the wait-free counter on real domains.")
    Term.(ret (const run $ procs $ ops $ backend))

(* --- explore ------------------------------------------------------------------ *)

let explore_cmd =
  let naive_flag =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:
            "Enumerate every maximal schedule (the default; sound for \
             linearizability).  Mutually exclusive with $(b,--dpor).")
  in
  let dpor_flag =
    Arg.(
      value & flag
      & info [ "dpor" ]
          ~doc:
            "Use dynamic partial-order reduction: orders of magnitude \
             fewer schedules, but violations living purely in the \
             real-time order of independent accesses (such as the naive \
             collect's) can be missed — states are preserved under \
             commuting, event order is not.")
  in
  let way_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("systematic", `Systematic);
                  ("uniform", `Uniform);
                  ("weighted", `Weighted);
                ]))
          None
      & info [ "way" ] ~docv:"WAY"
          ~doc:
            "Search strategy (dejafu-style).  $(b,systematic): parallel \
             DPOR under the $(b,--bound-*) filters (sound for bug \
             finding; exhaustive per Mazurkiewicz trace when unbounded).  \
             $(b,uniform): $(b,--samples) seeded random maximal \
             schedules.  $(b,weighted): random with $(b,--bias) towards \
             staying on the current process — near-serial schedules that \
             catch real-time-order bugs uniform sampling rarely hits.  \
             Without $(b,--way) the legacy $(b,--naive)/$(b,--dpor) \
             exhaustive search runs.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "RNG seed for random ways; sample i is a deterministic \
             function of (seed, i), so counterexamples replay exactly.")
  in
  let samples_arg =
    Arg.(
      value & opt int 2_000
      & info [ "samples" ] ~docv:"N"
          ~doc:"Number of random schedules a uniform/weighted way draws.")
  in
  let bias_arg =
    Arg.(
      value & opt float 16.0
      & info [ "bias" ] ~docv:"W"
          ~doc:
            "Weighted way only: relative weight of not context-switching \
             (1.0 = uniform; larger = more serial schedules).")
  in
  let bound_preempt =
    Arg.(
      value
      & opt (some int) None
      & info [ "bound-preempt" ] ~docv:"K"
          ~doc:
            "Systematic way: prune schedules with more than K pre-emptive \
             context switches (a step by p while the previously stepped \
             process is still runnable).")
  in
  let bound_fair =
    Arg.(
      value
      & opt (some int) None
      & info [ "bound-fair" ] ~docv:"K"
          ~doc:
            "Systematic way: prune schedules where a process gets more \
             than K steps ahead of the least-stepped still-runnable \
             process (aimed at busy-wait loops; rarely useful for the \
             paper's wait-free algorithms).")
  in
  let bound_length =
    Arg.(
      value
      & opt (some int) None
      & info [ "bound-length" ] ~docv:"K"
          ~doc:"Systematic way: prune schedules longer than K steps.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Explore subtree/sample tasks on N domains.  The task \
             partition is fixed up front, so coverage counts and \
             counterexamples are identical for any N.")
  in
  let procs_arg =
    Arg.(
      value & opt int 3
      & info [ "procs" ] ~docv:"N"
          ~doc:
            "Process count for the naive-collect fixture (N-1 updaters \
             vs 1 snapshotter, 2..8).  The atomic-snapshot fixture stays \
             at 2 processes.")
  in
  let shrink_flag =
    Arg.(
      value
      & opt ~vopt:true bool true
      & info [ "shrink" ] ~docv:"BOOL"
          ~doc:
            "Delta-debug a failing schedule to a locally minimal \
             counterexample before printing it.")
  in
  let max_schedules =
    Arg.(
      value & opt int 2_000_000
      & info [ "max-schedules" ] ~docv:"N"
          ~doc:"Stop the search after exploring N schedules.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Replay the collect counterexample (shrunk if shrinking is \
             on) with a tracing journal attached, print its annotated \
             timeline, and write the Chrome trace-event JSON to FILE \
             (open in Perfetto or chrome://tracing).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"SCHEDULE"
          ~doc:
            "Skip the search: replay an encoded schedule (the printed \
             counterexample syntax, e.g. 'p2 p0 p1 !p2' where !pN \
             crashes N) on the 3-process naive collect, print its \
             timeline and linearizability verdict.")
  in
  let run naive dpor way_opt seed samples bias b_pre b_fair b_len jobs procs
      shrink max_schedules trace_out replay =
    if naive && dpor then `Error (false, "--naive and --dpor are exclusive")
    else if procs < 2 || procs > 8 then
      `Error (false, "--procs must be in 2..8")
    else begin
      let mode =
        if dpor then Pram.Explore.Dpor else Pram.Explore.Naive
      in
      let way =
        match way_opt with
        | None -> None
        | Some `Systematic ->
            Some
              (Pram.Explore.Way.Systematic
                 (Pram.Explore.Bounds.make ?preempt:b_pre ?fair:b_fair
                    ?length:b_len ()))
        | Some `Uniform -> Some (Pram.Explore.Way.Uniform { seed; count = samples })
        | Some `Weighted ->
            Some (Pram.Explore.Way.Weighted { seed; count = samples; bias })
      in
      let module V = Snapshot.Slot_value.Int in
      let module Arr = Snapshot.Snapshot_array.Make (V) (Pram.Memory.Sim_v) in
      let module Naive_c = Snapshot.Collect.Make (V) (Pram.Memory.Sim) in
      let module Spec2 =
        Snapshot.Array_spec.Make
          (V)
          (struct
            let procs = 2
          end)
      in
      let module SpecN =
        Snapshot.Array_spec.Make
          (V)
          (struct
            let procs = procs
          end)
      in
      let module Check2 = Lincheck.Make (Spec2) in
      let module CheckN = Lincheck.Make (SpecN) in
      (* the atomic snapshot: updater vs snapshotter, every interleaving
         (or one representative of each equivalence class) is clean.
         Factories mint a fresh (recorder, program) pair per search
         worker: the recorder-by-reference idiom is domain-local. *)
      let mk_atomic () =
        let recorder = ref (Spec.History.Recorder.create ()) in
        let program () =
          recorder := Spec.History.Recorder.create ();
          let t = Arr.create ~procs:2 in
          fun pid ->
            let h = Arr.attach t (Runtime.Ctx.make ~procs:2 ~pid ()) in
            if pid = 0 then
              ignore
                (Spec.History.Recorder.record !recorder ~pid (`Update (0, 10))
                   (fun () ->
                     Arr.update h 10;
                     `Unit))
            else
              ignore
                (Spec.History.Recorder.record !recorder ~pid `Snapshot
                   (fun () -> `View (Arr.snapshot h)))
        in
        (recorder, program)
      in
      (* the naive collect: N-1 updaters vs a snapshotter is NOT
         linearizable; the explorer finds, shrinks and prints a
         counterexample schedule with its history *)
      let mk_collect () =
        let recorder = ref (Spec.History.Recorder.create ()) in
        let program () =
          recorder := Spec.History.Recorder.create ();
          let t = Naive_c.create ~procs in
          fun pid ->
            let h = Naive_c.attach t (Runtime.Ctx.make ~procs ~pid ()) in
            if pid < procs - 1 then
              ignore
                (Spec.History.Recorder.record !recorder ~pid
                   (`Update (pid, pid + 10)) (fun () ->
                     Naive_c.update h (pid + 10);
                     `Unit))
            else
              ignore
                (Spec.History.Recorder.record !recorder ~pid `Snapshot
                   (fun () -> `View (Naive_c.snapshot h)))
        in
        (recorder, program)
      in
      let recorder2, atomic_program = mk_atomic () in
      let recorderN, collect_program = mk_collect () in
      let collect_label =
        Printf.sprintf "naive collect, %d updaters vs snapshotter (%d \
                        processes, buggy):"
          (procs - 1) procs
      in
      match replay with
      | Some sched -> (
          (* no search: replay one encoded schedule on the collect with a
             tracing journal attached and report what happened *)
          match Pram.Trace.parse_encoded_schedule sched with
          | Error msg -> `Error (false, "--replay: " ^ msg)
          | Ok enc ->
              let a =
                CheckN.trace_counterexample ~procs ~recorder:recorderN
                  collect_program enc
              in
              Printf.printf
                "replay on the naive collect (%d updaters vs snapshotter):\n"
                (procs - 1);
              print_endline (Tracing.timeline a);
              let linearizable =
                CheckN.is_linearizable
                  (Spec.History.Recorder.events !recorderN)
              in
              Printf.printf "history linearizable: %b\n" linearizable;
              (match trace_out with
              | None -> ()
              | Some path ->
                  Tracing.write_chrome_file ~path a;
                  Printf.printf "wrote Chrome trace to %s\n" path);
              `Ok ())
      | None ->
          print_endline
            "atomic scan, updater vs snapshotter (2 processes, correct):";
          let atomic_report =
            match way with
            | None ->
                Check2.explore_check ~mode ~shrink ~max_schedules ~procs:2
                  ~recorder:recorder2 atomic_program
            | Some w ->
                Check2.search_check ~way:w ~jobs ~shrink ~max_schedules
                  ~procs:2 mk_atomic
          in
          Format.printf "  @[<v>%a@]@." Pram.Explore.pp_report atomic_report;
          print_endline collect_label;
          let collect_report =
            match way with
            | None ->
                CheckN.explore_check ~mode ~shrink ~max_schedules ~procs
                  ~recorder:recorderN collect_program
            | Some w ->
                CheckN.search_check ~way:w ~jobs ~shrink ~max_schedules ~procs
                  mk_collect
          in
          Format.printf "  @[<v>%a@]@." Pram.Explore.pp_report collect_report;
          (match collect_report.Pram.Explore.r_counterexample with
          | Some cex ->
              Printf.printf "counterexample provenance: %s\n"
                cex.Pram.Explore.cex_way
          | None -> ());
          (match (trace_out, collect_report.Pram.Explore.r_counterexample) with
          | None, _ -> ()
          | Some _, None ->
              print_endline "no counterexample to trace (search was clean)"
          | Some path, Some cex ->
              let a =
                CheckN.trace_counterexample ~procs ~recorder:recorderN
                  collect_program cex.Pram.Explore.cex_shrunk
              in
              print_endline "counterexample timeline:";
              print_endline (Tracing.timeline a);
              Tracing.write_chrome_file ~path a;
              Printf.printf "wrote counterexample Chrome trace to %s\n" path);
          (* exit non-zero on any unexpected verdict: the correct object must
             pass its search, and the search must catch the known-broken
             collect — either failure means a real bug, in the algorithm or
             in the explorer.  Exception: the collect's violation lives
             purely in the real-time order of independent accesses, which
             DPOR-based searches (legacy --dpor and --way systematic) are
             documented to miss — a clean report there is a warning, not a
             failure.  Random ways check real executions and must find it. *)
          let dpor_based =
            match way with
            | None -> mode = Pram.Explore.Dpor
            | Some (Pram.Explore.Way.Systematic _) -> true
            | Some (Pram.Explore.Way.Uniform _ | Pram.Explore.Way.Weighted _)
              ->
                false
          in
          if not (Pram.Explore.report_ok atomic_report) then
            `Error
              ( false,
                "linearizability violation (or truncated search) on the \
                 atomic snapshot" )
          else if Pram.Explore.report_ok collect_report then
            if dpor_based then begin
              print_endline
                "note: the DPOR-based search missed the collect's \
                 real-time-order violation (a documented limitation); rerun \
                 with --naive or a random --way for the ground truth";
              `Ok ()
            end
            else
              `Error
                ( false,
                  "the explorer missed the naive collect's known violation" )
          else `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Model-check the atomic snapshot (clean) and the naive collect \
          (broken); failing schedules are shrunk to minimal \
          counterexamples.  $(b,--dpor) prunes the search to one \
          representative per Mazurkiewicz trace; $(b,--way) selects \
          bounded-systematic or seeded-random search, parallelizable with \
          $(b,--jobs).  $(b,--trace-out) exports the counterexample as a \
          Chrome trace; $(b,--replay) re-executes a pasted schedule under \
          the tracer.")
    Term.(
      ret
        (const run $ naive_flag $ dpor_flag $ way_arg $ seed_arg $ samples_arg
       $ bias_arg $ bound_preempt $ bound_fair $ bound_length $ jobs_arg
       $ procs_arg $ shrink_flag $ max_schedules $ trace_out $ replay))

(* --- trace -------------------------------------------------------------------- *)

let trace_cmd =
  let workload =
    Arg.(
      value
      & opt
          (enum
             [ ("scan", `Scan); ("agreement", `Agreement); ("counter", `Counter) ])
          `Scan
      & info [ "workload" ] ~docv:"W"
          ~doc:
            "What to trace: the Section 6 atomic $(b,scan), Figure 2 \
             approximate $(b,agreement), or the universal-construction \
             $(b,counter).")
  in
  let backend =
    Arg.(
      value
      & opt (enum backend_enum) Runtime.Backend.Sim
      & info [ "backend" ] ~docv:"B"
          ~doc:
            "$(b,sim): the deterministic simulator (accesses via the driver \
             observer, logical clock, schedule recorded for replay).  \
             $(b,native): real domains (accesses via the Runtime.Instrument \
             memory wrapper, monotonic clock).  $(b,direct): sequential, \
             instrumented like native.")
  in
  let procs =
    Arg.(value & opt int 3 & info [ "procs" ] ~docv:"N" ~doc:"Process count.")
  in
  let format_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("timeline", `Timeline); ("chrome", `Chrome); ("text", `Text) ])
          `Timeline
      & info [ "format" ] ~docv:"F"
          ~doc:
            "Rendering: per-process ASCII $(b,timeline); $(b,chrome) \
             trace-event JSON (open in Perfetto / chrome://tracing); or the \
             round-trippable $(b,text) format (reloadable with \
             Tracing.load_file).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Simulator only: drive with a seeded random scheduler instead \
             of round-robin.")
  in
  let sched_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("round-robin", `Rr); ("random", `Random); ("pct", `Pct) ]))
          None
      & info [ "sched" ] ~docv:"S"
          ~doc:
            "Simulator only: the scheduling policy — $(b,round-robin) (the \
             default), seeded $(b,random), or $(b,pct) (probabilistic \
             concurrency testing: random priorities, highest runnable \
             first, with $(b,--depth) distinct demotion points; uses \
             $(b,--seed), default 42).  Without $(b,--sched), giving \
             $(b,--seed) selects $(b,random).")
  in
  let depth_arg =
    Arg.(
      value & opt int 3
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "PCT only: number of distinct priority-demotion points — the d \
             in the 1/(n k^(d-1)) detection bound.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Self-validate the trace and exit non-zero on failure: the \
             Chrome rendering must parse with the in-repo JSON parser, and \
             the text rendering must survive save -> parse unchanged; on \
             the simulator additionally parse -> replay the recorded \
             schedule -> re-export and require byte-identical output.")
  in
  let variant_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("plain", Snapshot.Scan.Plain);
               ("optimized", Snapshot.Scan.Optimized);
               ("adaptive", Snapshot.Scan.Adaptive);
               ("lattice", Snapshot.Scan.Lattice);
             ])
          Snapshot.Scan.Optimized
      & info [ "variant" ] ~docv:"V"
          ~doc:
            "Scan workload only: the scan variant to trace — $(b,plain), \
             $(b,optimized) (the default), $(b,adaptive), or $(b,lattice) \
             (the classifier-tree scan; its descents show up as \
             classifier_descend telemetry and lattice-descend journal \
             annotations).")
  in
  let run workload kind procs fmt out seed sched depth check variant =
    if procs <= 0 then `Error (false, "procs must be positive")
    else if depth < 1 then `Error (false, "depth must be at least 1")
    else begin
      (* One workload program over any backend from the registry: the
         context carries the journal, so the same code paths are traced
         whichever arm runs it.  Accesses are fed by the driver observer
         under sim and by the Runtime.Instrument wrapper otherwise; both
         come out of the same [Runtime.Sink]. *)
      let make_program j (module M : Pram.Memory.S) () =
        let sink = Runtime.Sink.make ~journal:j () in
        let ctx pid = Runtime.Ctx.make ~sink ~procs ~pid () in
        match workload with
        | `Scan ->
            let module S =
              Snapshot.Scan.Make (Semilattice.Int_max) (Pram.Memory.Versioned (M))
            in
            let t = S.create ~procs in
            fun pid ->
              let h = S.attach t (ctx pid) in
              S.write_l ~variant h (pid + 1);
              ignore (S.read_max ~variant h)
        | `Agreement ->
            let module AA = Agreement.Approx_agreement.Make (M) in
            let t = AA.create ~procs ~epsilon:0.05 in
            fun pid ->
              let h = AA.attach t (ctx pid) in
              AA.input h (float_of_int pid);
              ignore (AA.output h)
        | `Counter ->
            let module UC =
              Universal.Construction.Make
                (Spec.Counter_spec)
                (Pram.Memory.Versioned (M))
            in
            let t = UC.create ~procs in
            fun pid ->
              let h = UC.attach t (ctx pid) in
              ignore (UC.execute h (Spec.Counter_spec.Inc 1));
              ignore (UC.execute h Spec.Counter_spec.Read)
      in
      let fresh_journal () =
        match kind with
        | Runtime.Backend.Native ->
            Tracing.Journal.create ~clock:`Monotonic ~procs ()
        | _ -> Tracing.Journal.create ~procs ()
      in
      let run_once () =
        let j = fresh_journal () in
        let scheduler =
          match kind with
          | Runtime.Backend.Sim -> (
              match (sched, seed) with
              | Some `Rr, _ -> Some (Pram.Scheduler.round_robin ())
              | Some `Random, _ | None, Some _ ->
                  Some
                    (Pram.Scheduler.random
                       ~seed:(Option.value seed ~default:42)
                       ())
              | Some `Pct, _ ->
                  Some
                    (Pram.Scheduler.pct
                       ~seed:(Option.value seed ~default:42)
                       ~depth ~max_steps:1_000 ())
              | None, None -> None)
          | _ -> None
        in
        let outcome =
          Runtime.Backend.run kind
            ~sink:(Runtime.Sink.make ~journal:j ())
            ?scheduler ~procs (make_program j)
        in
        match kind with
        | Runtime.Backend.Sim ->
            Tracing.archive ~schedule:outcome.Runtime.Backend.schedule j
        | _ -> Tracing.archive j
      in
      (* replay a saved simulator schedule with a fresh journal: the basis
         of the --check byte-identity guarantee *)
      let replay_sim sched =
        let j = Tracing.Journal.create ~procs () in
        let d =
          Pram.Driver.create
            ~observer:(Tracing.Journal.observer j)
            ~procs
            (make_program j (Runtime.Backend.memory Runtime.Backend.Sim))
        in
        ignore (Pram.Explore.apply_encoded d sched);
        Tracing.archive ~schedule:sched j
      in
      let a = run_once () in
      let rendered =
        match fmt with
        | `Timeline -> Tracing.timeline a ^ "\n"
        | `Chrome -> Tracing.chrome_json a
        | `Text -> Tracing.save a
      in
      (match out with
      | None -> print_string rendered
      | Some path ->
          let oc = open_out path in
          output_string oc rendered;
          close_out oc;
          Printf.printf "wrote %d events to %s\n"
            (List.length a.Tracing.a_events)
            path);
      if not check then `Ok ()
      else begin
        let errors = ref [] in
        let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
        (match Experiments.Bench_json.Json.parse (Tracing.chrome_json a) with
        | Ok _ -> ()
        | Error e -> err "chrome JSON does not parse: %s" e);
        (match Tracing.parse (Tracing.save a) with
        | Error e -> err "text format does not parse back: %s" e
        | Ok a' ->
            if Tracing.save a' <> Tracing.save a then
              err "text save -> parse -> save is not byte-identical";
            if kind = Runtime.Backend.Sim then begin
              (* the full acceptance loop: save -> load -> replay the
                 schedule -> re-export, byte-for-byte *)
              let a'' = replay_sim a'.Tracing.a_schedule in
              if Tracing.save a'' <> Tracing.save a then
                err "replayed schedule does not re-export byte-identically";
              if Tracing.chrome_json a'' <> Tracing.chrome_json a then
                err "replayed schedule changes the Chrome export"
            end);
        match !errors with
        | [] ->
            Printf.printf "check: ok (%d events)\n"
              (List.length a.Tracing.a_events);
            `Ok ()
        | errs -> `Error (false, String.concat "; " (List.rev errs))
      end
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload with the structured tracer attached and render \
          the event journal as a timeline, a Chrome trace, or the \
          round-trippable text format.")
    Term.(
      ret
        (const run $ workload $ backend $ procs $ format_arg $ out $ seed
       $ sched_arg $ depth_arg $ check $ variant_arg))

(* --- lincheck-demo ----------------------------------------------------------- *)

let lincheck_demo_cmd =
  let run () =
    let module V = Snapshot.Slot_value.Int in
    let module Naive = Snapshot.Collect.Make (V) (Pram.Memory.Sim) in
    let module Spec3 =
      Snapshot.Array_spec.Make
        (V)
        (struct
          let procs = 3
        end)
    in
    let module Check = Lincheck.Make (Spec3) in
    let rec search seed =
      if seed > 5000 then None
      else begin
        let recorder = Spec.History.Recorder.create () in
        let program () =
          let t = Naive.create ~procs:3 in
          fun pid ->
            let h = Naive.attach t (Runtime.Ctx.make ~procs:3 ~pid ()) in
            ignore
              (Spec.History.Recorder.record recorder ~pid
                 (`Update (pid, pid + 10)) (fun () ->
                   Naive.update h (pid + 10);
                   `Unit));
            ignore
              (Spec.History.Recorder.record recorder ~pid `Snapshot (fun () ->
                   `View (Naive.snapshot h)))
        in
        let d = Pram.Driver.create ~procs:3 program in
        Pram.Scheduler.run (Pram.Scheduler.random ~seed ()) d;
        let events = Spec.History.Recorder.events recorder in
        if Check.is_linearizable events then search (seed + 1)
        else Some (seed, events)
      end
    in
    match search 0 with
    | Some (seed, events) ->
        Printf.printf
          "naive collect: non-linearizable history found at scheduler seed %d:\n"
          seed;
        Format.printf "%a@."
          (Spec.History.pp Spec3.pp_operation Spec3.pp_response)
          events;
        `Ok ()
    | None ->
        `Error
          ( false,
            "no violation found in 5000 seeds: the checker or the schedules \
             regressed" )
  in
  Cmd.v
    (Cmd.info "lincheck-demo"
       ~doc:
         "Find and print a non-linearizable history of the naive collect.")
    Term.(ret (const run $ const ()))

(* --- top ---------------------------------------------------------------------- *)

(* A live terminal view over a telemetry-instrumented store run: worker
   domains drive keyed zipfian traffic through Wfa.Store while the main
   domain refreshes a per-shard table (throughput, queue depth,
   fallbacks, rebuilds) from the shared Telemetry.Counters grid.  The
   same renderer prints one final snapshot in --once mode, which is what
   CI smokes. *)
let top_cmd =
  let procs =
    Arg.(value & opt int 4 & info [ "procs" ] ~docv:"N" ~doc:"Driving domains.")
  in
  let shards =
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"S" ~doc:"Store shards.")
  in
  let ops =
    Arg.(
      value & opt int 20_000
      & info [ "ops" ] ~docv:"M" ~doc:"Operations per domain.")
  in
  let refresh =
    Arg.(
      value & opt float 0.5
      & info [ "refresh" ] ~docv:"SEC"
          ~doc:"Refresh (and sampling-window) interval in seconds.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Run the workload to completion and print a single snapshot \
             instead of live-refreshing (the CI smoke mode).")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "After the run, write the OpenMetrics exposition (counters \
             plus the windowed series) to FILE; the text is linted with \
             the in-repo parser first.")
  in
  let read_fraction =
    Arg.(
      value & opt float 0.5
      & info [ "read-fraction" ] ~docv:"F"
          ~doc:"Fraction of read operations in the keyed script.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Open-loop aggregate arrival rate in ops/s (split evenly \
             across domains, coordinated-omission corrected); without \
             it the loop is closed.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")
  in
  let render ~live ~procs ~t0 ~counters ~sampler () =
    let module T = Telemetry in
    let elapsed = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
    let total_ops = T.Sampler.total_ops sampler in
    let buf = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    line "wfa top — procs %d, shards %d, elapsed %.1fs" procs
      (T.Counters.families counters) elapsed;
    line "ops %d (%.0f ops/s overall)  windows %d  dropped %d" total_ops
      (float_of_int total_ops /. elapsed)
      (List.length (T.Sampler.windows sampler))
      (T.Sampler.dropped sampler);
    (match List.rev (T.Sampler.windows sampler) with
    | [] -> ()
    | w :: _ ->
        let lat =
          match w.T.Window.latency with
          | None -> "latency -"
          | Some s ->
              Printf.sprintf "p50 %dns p99 %dns" s.Metrics.Stats.p50
                s.Metrics.Stats.p99
        in
        line "last window: %d ops (%.0f ops/s)  %s" w.T.Window.ops
          (float_of_int w.T.Window.ops /. T.Sampler.interval sampler)
          lat);
    line "%-6s %12s %10s %10s %9s" "shard" "queue_depth" "ops/s" "fallback"
      "rebuild";
    for s = 0 to T.Counters.families counters - 1 do
      let f e = T.Counters.family_total counters ~family:s e in
      line "%-6d %12d %10.0f %10d %9d" s
        (f T.Event.Shard_queue_depth)
        (float_of_int (f T.Event.Shard_queue_depth) /. elapsed)
        (f T.Event.Store_batch_fallback)
        (f T.Event.Store_rebuild)
    done;
    line "%s"
      (String.concat "  "
         (List.map
            (fun e ->
              Printf.sprintf "%s=%d" (T.Event.name e)
                (T.Counters.total counters e))
            T.Event.all));
    if live then print_string "\027[2J\027[H";
    print_string (Buffer.contents buf);
    flush stdout
  in
  let run procs shards ops refresh once prom read_fraction rate seed =
    if procs <= 0 then `Error (false, "--procs must be positive")
    else if shards <= 0 then `Error (false, "--shards must be positive")
    else if refresh <= 0.0 then `Error (false, "--refresh must be positive")
    else if read_fraction < 0.0 || read_fraction > 1.0 then
      `Error (false, "--read-fraction must be in [0,1]")
    else begin
      let module S = Universal.Store.Make (Spec.Counter_spec) (Pram.Native.Versioned)
      in
      let script =
        Workload.keyed_counter_script ~seed ~keys:32 ~theta:0.9 ~read_fraction
          ~ops_per_proc:ops
      in
      let counters = Telemetry.Counters.create ~families:shards ~procs () in
      let sampler =
        Telemetry.Sampler.create ~interval:refresh ~counters ()
      in
      let sink = Runtime.Sink.make ~telemetry:counters () in
      let t = S.create ~shards ~procs () in
      let loop =
        Option.map
          (fun r -> Workload.Traffic.Open { rate = r /. float_of_int procs })
          rate
      in
      let t0 = Unix.gettimeofday () in
      let drive () =
        Pram.Native.run_parallel ~procs (fun pid ->
            let h = S.attach t (Runtime.Ctx.make ~sink ~procs ~pid ()) in
            Workload.Traffic.drive ~telemetry:sampler ?loop ~flush_every:64
              ~ops:(script pid)
              ~submit:(fun key op -> S.submit h ~key op)
              ~flush:(fun () -> ignore (S.flush h))
              ())
      in
      let reports =
        if once then drive ()
        else begin
          (* workers on their own domain tree; the main domain renders
             off the shared (atomic) counter grid until they finish *)
          let done_ = Atomic.make false in
          let runner =
            Domain.spawn (fun () ->
                Fun.protect ~finally:(fun () -> Atomic.set done_ true) drive)
          in
          while not (Atomic.get done_) do
            Unix.sleepf refresh;
            Telemetry.Sampler.tick sampler;
            render ~live:true ~procs ~t0 ~counters ~sampler ()
          done;
          Domain.join runner
        end
      in
      Telemetry.Sampler.finish sampler;
      render ~live:false ~procs ~t0 ~counters ~sampler ();
      let completed =
        List.fold_left (fun a r -> a + r.Workload.Traffic.ops) 0 reports
      in
      let prom_result =
        match prom with
        | None -> Ok ()
        | Some path -> (
            let text =
              Telemetry.Openmetrics.render
                ~series:(Telemetry.Series.of_sampler sampler)
                counters
            in
            match Telemetry.Openmetrics.lint text with
            | Error e -> Error ("OpenMetrics lint failed: " ^ e)
            | Ok _ ->
                let oc = open_out path in
                output_string oc text;
                close_out oc;
                Printf.printf "wrote OpenMetrics exposition to %s\n" path;
                Ok ())
      in
      match prom_result with
      | Error e -> `Error (false, e)
      | Ok () ->
          if completed <> procs * ops then
            `Error
              ( false,
                Printf.sprintf "drove %d ops but expected %d" completed
                  (procs * ops) )
          else if Telemetry.Sampler.dropped sampler > 0 then
            `Error
              ( false,
                Printf.sprintf "sampler dropped %d windows (ring overflow)"
                  (Telemetry.Sampler.dropped sampler) )
          else `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Drive keyed zipfian traffic through the sharded store on real \
          domains and watch it live: a refreshing per-shard table of \
          throughput, queue depth, batch fallbacks and rebuilds from the \
          telemetry counter grid, with per-window ops/sec and latency \
          quantiles from the sampler.  $(b,--once) prints a single \
          snapshot after the run (the CI smoke); $(b,--prom) exports the \
          OpenMetrics text.")
    Term.(
      ret
        (const run $ procs $ shards $ ops $ refresh $ once $ prom
       $ read_fraction $ rate $ seed))

(* --- bench / bench-validate -------------------------------------------------- *)

let bench_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Write the rows as JSON to $(b,--out) (the only supported \
             output; the flag exists for symmetry with bench/main.exe).")
  in
  let out =
    Arg.(
      value
      & opt string Experiments.Bench_json.default_path
      & info [ "out" ] ~docv:"FILE" ~doc:"Output path for the JSON rows.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps, faster run.")
  in
  let run json out quick =
    ignore json;
    let rows = Experiments.Bench_json.run ~path:out ~quick () in
    Printf.printf "wrote %d rows to %s\n" (List.length rows) out;
    match Experiments.Bench_json.validate_file ~path:out () with
    | Ok _ -> `Ok ()
    | Error errs ->
        `Error (false, "schema check failed: " ^ String.concat "; " errs)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the JSON bench pipeline: simulator step counts, native \
          multi-domain throughput and wall-clock spans (procs 1,2,4,8), \
          direct timing, and the windowed telemetry series — the \
          BENCH_PR10.json rows.")
    Term.(ret (const run $ json $ out $ quick))

let store_bench_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Write the rows as JSON to $(b,--out) and validate them.")
  in
  let out =
    Arg.(
      value
      & opt string "STORE_BENCH.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output path for the JSON rows.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps, faster run.")
  in
  let run json out quick =
    let rows = Experiments.Bench_json.store_rows ~quick in
    if not json then begin
      Format.printf "%a" Experiments.Bench_json.pp_rows rows;
      `Ok ()
    end
    else begin
      Experiments.Bench_json.write_file ~path:out rows;
      Printf.printf "wrote %d rows to %s\n" (List.length rows) out;
      match
        Experiments.Bench_json.validate_file
          ~scope:Experiments.Bench_json.Store ~path:out ()
      with
      | Ok _ -> `Ok ()
      | Error errs ->
          `Error (false, "store gate failed: " ^ String.concat "; " errs)
    end
  in
  Cmd.v
    (Cmd.info "store-bench"
       ~doc:
         "Run only the keyed-store stages (Wfa.Store): exact sim \
          counters (ops, graph entries, fallbacks, spec replays) and \
          native batched-vs-unbatched throughput with latency \
          percentiles, procs 1,2,4,8.  With $(b,--json) the rows are \
          written and checked against the store_* gates — including \
          batched >= unbatched throughput at procs >= 4.")
    Term.(ret (const run $ json $ out $ quick))

let bench_validate_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Bench JSON file to validate.")
  in
  let only =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("store", Experiments.Bench_json.Store);
                  ("series", Experiments.Bench_json.Series);
                  ("scan", Experiments.Bench_json.Scan);
                ]))
          None
      & info [ "only" ] ~docv:"FAMILY"
          ~doc:
            "Restrict the semantic pass to one bench family's gates: \
             $(b,store) (what a partial file like store-bench output can \
             satisfy) or $(b,series) (only the windowed time-series \
             invariants — contiguous windows, monotone timestamps, \
             ops reconciliation).  Without it the file must carry every \
             family.")
  in
  let run file only =
    let scope =
      Option.value only ~default:Experiments.Bench_json.All
    in
    match Experiments.Bench_json.validate_file ~scope ~path:file () with
    | Ok n ->
        Printf.printf "%s: ok (%d rows)\n" file n;
        `Ok ()
    | Error errs ->
        List.iter (Printf.eprintf "%s: %s\n" file) errs;
        `Error (false, Printf.sprintf "%d schema error(s)" (List.length errs))
  in
  Cmd.v
    (Cmd.info "bench-validate"
       ~doc:
         "Validate a bench JSON file: syntax, the 6-field row schema, \
          scan rows against Scan.cost_formula, procs coverage, zero \
          lost updates, and the store batching gates.  Non-zero exit on \
          any failure (the CI gate).")
    Term.(ret (const run $ file $ only))

let () =
  let default =
    Term.(ret (const (`Help (`Pager, None))))
  in
  let info =
    Cmd.info "wfa" ~version:"1.0.0"
      ~doc:"Wait-free data structures in the asynchronous PRAM model."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            experiment_cmd;
            agree_cmd;
            adversary_cmd;
            counter_cmd;
            explore_cmd;
            trace_cmd;
            lincheck_demo_cmd;
            top_cmd;
            bench_cmd;
            store_bench_cmd;
            bench_validate_cmd;
          ]))
